"""Counters, gauges and histograms with Prometheus text exposition.

The registry is deliberately small: named metrics with optional help
strings, thread-safe updates, a versioned :meth:`MetricsRegistry.snapshot`
payload (serialized through ``service/serialize.py``) and
:meth:`MetricsRegistry.render_prometheus` producing the text format
``text/plain; version=0.0.4`` that the daemon's ``GET /metrics`` serves.
Metrics may carry *constant* labels (one label set per metric object,
escaped per the exposition spec); there is no per-sample label fan-out —
the daemon's cardinality needs are covered by per-state counters, and
keeping the model flat keeps exposition trivially correct.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Version of the snapshot payload schema.  Adding keys is fine;
#: renaming or removing existing ones is breaking.
METRICS_SCHEMA_VERSION = 1

#: Default histogram buckets (seconds) — tuned for job durations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)


def _format_value(value: float) -> str:
    """Prometheus renders integers without a trailing ``.0``."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    """``# HELP`` lines escape backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    """Label values additionally escape the double quote."""
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(
    labels: Optional[Mapping[str, str]],
    extra: Optional[Tuple[str, str]] = None,
) -> str:
    """The ``{k="v",...}`` suffix for a sample line ('' when unlabelled)."""
    pairs = [(k, str(v)) for k, v in (labels or {}).items()]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} counter")
        lines.append(
            f"{self.name}{_render_labels(self.labels)} {_format_value(self.value)}"
        )
        return lines


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} gauge")
        lines.append(
            f"{self.name}{_render_labels(self.labels)} {_format_value(self.value)}"
        )
        return lines


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._bucket_counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[i] += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": {
                    repr(bound): count
                    for bound, count in zip(self.buckets, self._bucket_counts)
                },
                "sum": self._sum,
                "count": self._count,
            }

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} histogram")
        suffix = _render_labels(self.labels)
        with self._lock:
            # Bucket counts are already cumulative at observe() time.
            for bound, count in zip(self.buckets, self._bucket_counts):
                bucket_labels = _render_labels(
                    self.labels, extra=("le", _format_value(bound))
                )
                lines.append(f"{self.name}_bucket{bucket_labels} {count}")
            inf_labels = _render_labels(self.labels, extra=("le", "+Inf"))
            lines.append(f"{self.name}_bucket{inf_labels} {self._count}")
            lines.append(f"{self.name}_sum{suffix} {_format_value(self._sum)}")
            lines.append(f"{self.name}_count{suffix} {self._count}")
        return lines


class MetricsRegistry:
    """Get-or-create registry; the single source the daemon exposes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind.kind}"
                )
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        return self._get_or_create(name, Counter, help=help, labels=labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        return self._get_or_create(name, Gauge, help=help, labels=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        kwargs: Dict[str, Any] = {"help": help, "labels": labels}
        if buckets is not None:
            kwargs["buckets"] = buckets
        return self._get_or_create(name, Histogram, **kwargs)

    # ------------------------------------------------------------------
    def counter_totals(self) -> Dict[str, float]:
        """Just the counters — folded into the daemon's ``/health``."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.name: m.snapshot() for m in metrics if isinstance(m, Counter)}

    def snapshot(self) -> Dict[str, Any]:
        """Versioned JSON-able payload of every registered metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Any] = {}
        for metric in metrics:
            if isinstance(metric, Counter):
                counters[metric.name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.snapshot()
            elif isinstance(metric, Histogram):
                histograms[metric.name] = metric.snapshot()
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4.

        An empty registry renders as the empty string — no stray blank
        line for parsers to trip on.
        """
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        if not metrics:
            return ""
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
