"""Span-based tracer with wall-time and virtual-time clocks.

A :class:`Span` is one named interval.  Spans carry *two* time axes:

* ``wall_start_s`` / ``wall_end_s`` — real seconds from the tracer's
  injectable ``clock`` (``time.perf_counter`` by default, a fake clock in
  tests).  Used for host-side work: pipeline stages, scheduler slices,
  daemon job lifecycles.
* ``virtual_start_us`` / ``virtual_end_us`` — microseconds on the replay
  engine's simulated clock.  Used for the per-rank Gantt lanes (kernel
  compute/comm slices, rendezvous stalls) where wall time is meaningless.

Either axis may be absent; the Chrome-trace exporter routes wall spans and
virtual slices to separate processes so the two timelines never mix.

Correlation context (job id, sweep point, rank) nests per *thread* via
:meth:`Tracer.scope`, so the daemon's worker threads each carry their own
job identity while sharing one tracer.

A tracer constructed with ``enabled=False`` is inert: every recording
method returns immediately after one attribute read.  That is the
"present-but-disabled" half of the zero-overhead contract —
``tests/test_telemetry_fastpath.py`` asserts results and cache digests
stay byte-identical either way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Version of the span payload schema produced by :meth:`Tracer.to_dict`.
#: Adding keys is fine; renaming or removing existing ones is breaking.
TELEMETRY_SCHEMA_VERSION = 1


@dataclass
class Span:
    """One named interval on the wall and/or virtual time axis."""

    name: str
    category: str
    wall_start_s: Optional[float] = None
    wall_end_s: Optional[float] = None
    virtual_start_us: Optional[float] = None
    virtual_end_us: Optional[float] = None
    correlation: Dict[str, Any] = field(default_factory=dict)
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_duration_s(self) -> Optional[float]:
        if self.wall_start_s is None or self.wall_end_s is None:
            return None
        return self.wall_end_s - self.wall_start_s

    @property
    def virtual_duration_us(self) -> Optional[float]:
        if self.virtual_start_us is None or self.virtual_end_us is None:
            return None
        return self.virtual_end_us - self.virtual_start_us

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "wall_start_s": self.wall_start_s,
            "wall_end_s": self.wall_end_s,
            "virtual_start_us": self.virtual_start_us,
            "virtual_end_us": self.virtual_end_us,
            "correlation": dict(self.correlation),
            "attributes": dict(self.attributes),
        }


@dataclass
class TraceEvent:
    """An instant (zero-duration) marker: park/wake, resume, errors."""

    name: str
    category: str
    wall_s: Optional[float] = None
    virtual_us: Optional[float] = None
    correlation: Dict[str, Any] = field(default_factory=dict)
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "wall_s": self.wall_s,
            "virtual_us": self.virtual_us,
            "correlation": dict(self.correlation),
            "attributes": dict(self.attributes),
        }


class _Scope:
    """Context manager popping one correlation frame (see Tracer.scope)."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> "Tracer":
        return self._tracer

    def __exit__(self, *exc: Any) -> None:
        self._tracer._pop_scope()


class Tracer:
    """Collects spans and instant events; thread-safe, cheaply disableable.

    One tracer instance spans one logical unit of observation — a replay
    session, a cluster replay, or a daemon's lifetime.  Recording methods
    are safe to call from many threads; the correlation stack is
    per-thread so concurrent jobs do not leak identity into each other.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = True,
        max_records: int = 250_000,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        #: Wall epoch: chrome-trace ``ts`` values are relative to this.
        self.epoch_s = clock()
        self._max_records = max_records
        self._dropped = 0
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._events: List[TraceEvent] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Correlation context
    # ------------------------------------------------------------------
    def scope(self, **correlation: Any) -> _Scope:
        """Push correlation keys (job_id, sweep_point, rank, ...) for the
        current thread; spans started inside inherit them.  Usable even on
        a disabled tracer (it is just a dict push)."""
        stack = self._scope_stack()
        merged = dict(stack[-1]) if stack else {}
        merged.update(correlation)
        stack.append(merged)
        return _Scope(self)

    def current_correlation(self) -> Dict[str, Any]:
        stack = self._scope_stack()
        return dict(stack[-1]) if stack else {}

    def _scope_stack(self) -> List[Dict[str, Any]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _pop_scope(self) -> None:
        stack = self._scope_stack()
        if stack:
            stack.pop()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        category: str,
        virtual_start_us: Optional[float] = None,
        **attributes: Any,
    ) -> Optional[Span]:
        """Open a wall-time span.  Returns ``None`` when disabled; pass the
        result straight to :meth:`end`, which tolerates ``None``."""
        if not self.enabled:
            return None
        return Span(
            name=name,
            category=category,
            wall_start_s=self.clock(),
            virtual_start_us=virtual_start_us,
            correlation=self.current_correlation(),
            attributes=attributes,
        )

    def end(self, span: Optional[Span], virtual_end_us: Optional[float] = None) -> None:
        if span is None or not self.enabled:
            return
        span.wall_end_s = self.clock()
        if virtual_end_us is not None:
            span.virtual_end_us = virtual_end_us
        self._append_span(span)

    def span(self, name: str, category: str, **attributes: Any) -> "_SpanContext":
        """``with tracer.span("stage:execute", "pipeline"): ...``"""
        return _SpanContext(self, name, category, attributes)

    def record(
        self,
        name: str,
        category: str,
        wall_start_s: Optional[float] = None,
        wall_end_s: Optional[float] = None,
        virtual_start_us: Optional[float] = None,
        virtual_end_us: Optional[float] = None,
        correlation: Optional[Dict[str, Any]] = None,
        **attributes: Any,
    ) -> None:
        """Append an already-complete span (e.g. a virtual-clock slice)."""
        if not self.enabled:
            return
        merged = self.current_correlation()
        if correlation:
            merged.update(correlation)
        self._append_span(
            Span(
                name=name,
                category=category,
                wall_start_s=wall_start_s,
                wall_end_s=wall_end_s,
                virtual_start_us=virtual_start_us,
                virtual_end_us=virtual_end_us,
                correlation=merged,
                attributes=attributes,
            )
        )

    def slice(
        self,
        rank: int,
        name: str,
        category: str,
        start_us: float,
        duration_us: float,
        **attributes: Any,
    ) -> None:
        """A virtual-time Gantt slice on one rank's lane (compute, comms,
        exposed-comms or stall)."""
        if not self.enabled:
            return
        self.record(
            name,
            category,
            virtual_start_us=start_us,
            virtual_end_us=start_us + duration_us,
            correlation={"rank": rank},
            **attributes,
        )

    def event(
        self,
        name: str,
        category: str,
        virtual_us: Optional[float] = None,
        correlation: Optional[Dict[str, Any]] = None,
        **attributes: Any,
    ) -> None:
        """An instant marker (scheduler park/wake, job transition, error)."""
        if not self.enabled:
            return
        merged = self.current_correlation()
        if correlation:
            merged.update(correlation)
        record = TraceEvent(
            name=name,
            category=category,
            wall_s=self.clock(),
            virtual_us=virtual_us,
            correlation=merged,
            attributes=attributes,
        )
        with self._lock:
            if len(self._events) >= self._max_records:
                self._dropped += 1
                return
            self._events.append(record)

    def _append_span(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self._max_records:
                self._dropped += 1
                return
            self._spans.append(span)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def spans(self) -> Tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        with self._lock:
            return tuple(self._events)

    @property
    def dropped(self) -> int:
        return self._dropped

    def iter_spans(self, category: Optional[str] = None) -> Iterator[Span]:
        for span in self.spans:
            if category is None or span.category == category:
                yield span

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._events.clear()
            self._dropped = 0

    def to_dict(self) -> Dict[str, Any]:
        """Versioned JSON-able payload (see ``service/serialize.py``)."""
        with self._lock:
            spans = [span.to_dict() for span in self._spans]
            events = [event.to_dict() for event in self._events]
            dropped = self._dropped
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "span_count": len(spans),
            "event_count": len(events),
            "dropped": dropped,
            "spans": spans,
            "events": events,
        }


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_category", "_attributes", "_span")

    def __init__(
        self, tracer: Tracer, name: str, category: str, attributes: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Optional[Span]:
        self._span = self._tracer.begin(self._name, self._category, **self._attributes)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._span is not None and exc_type is not None:
            self._span.attributes["error"] = repr(exc)
        self._tracer.end(self._span)
