"""Chrome-trace / Perfetto JSON export.

Two timelines, two trace processes:

* **pid 0 — host wall time.**  Pipeline stage spans, scheduler slices and
  daemon job lifecycles, with ``ts`` relative to the tracer's epoch.
* **pid 1 — cluster virtual time.**  Per-rank Gantt lanes built from the
  replay engine's simulated clock: each rank owns a block of thread
  lanes — ``compute``, ``comms``, ``exposed-comms`` and ``stall`` — so
  overlap between communication and computation is visible instead of
  stacked.

Events within each lane are sorted by ``ts``, so every lane is
monotonic (the acceptance property ``tests/test_telemetry.py`` checks).
Load the file at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.telemetry.tracer import Tracer

#: Virtual-lane sub-indices inside one rank's block of thread lanes.
_LANE_SUBS = {"compute": 0, "comms": 1, "exposed-comms": 2, "stall": 3}
_LANE_STRIDE = 8
_OTHER_SUB = 4

#: Host-lane thread ids per span category.
_HOST_TIDS = {"pipeline": 1, "scheduler": 2, "daemon": 3, "profiling": 4}
_HOST_OTHER_TID = 9
_HOST_RANK_TID_BASE = 100

_HOST_PID = 0
_VIRTUAL_PID = 1


def _host_tid(category: str, correlation: Mapping[str, Any]) -> Tuple[int, str]:
    rank = correlation.get("rank")
    if rank is not None:
        return _HOST_RANK_TID_BASE + int(rank), f"rank {rank} · {category}"
    tid = _HOST_TIDS.get(category, _HOST_OTHER_TID)
    return tid, category


def _virtual_tid(category: str, correlation: Mapping[str, Any]) -> Tuple[int, str]:
    rank = int(correlation.get("rank", 0))
    sub = _LANE_SUBS.get(category, _OTHER_SUB)
    label = category if sub != _OTHER_SUB else "events"
    return rank * _LANE_STRIDE + sub, f"rank {rank} · {label}"


def to_chrome_trace(
    tracer: Tracer, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Render every span and instant event as a Chrome-trace dict."""
    lanes: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    thread_names: Dict[Tuple[int, int], str] = {}

    def _add(pid: int, tid: int, name: str, event: Dict[str, Any]) -> None:
        lanes.setdefault((pid, tid), []).append(event)
        thread_names.setdefault((pid, tid), name)

    for span in tracer.spans:
        args: Dict[str, Any] = {}
        if span.correlation:
            args["correlation"] = dict(span.correlation)
        if span.attributes:
            args.update(span.attributes)
        if span.wall_start_s is not None and span.wall_end_s is not None:
            tid, lane = _host_tid(span.category, span.correlation)
            if span.virtual_start_us is not None:
                args["virtual_start_us"] = span.virtual_start_us
            if span.virtual_end_us is not None:
                args["virtual_end_us"] = span.virtual_end_us
            _add(
                _HOST_PID,
                tid,
                lane,
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": (span.wall_start_s - tracer.epoch_s) * 1e6,
                    "dur": max(0.0, span.wall_end_s - span.wall_start_s) * 1e6,
                    "pid": _HOST_PID,
                    "tid": tid,
                    "args": args,
                },
            )
        elif span.virtual_start_us is not None:
            end = (
                span.virtual_end_us
                if span.virtual_end_us is not None
                else span.virtual_start_us
            )
            tid, lane = _virtual_tid(span.category, span.correlation)
            _add(
                _VIRTUAL_PID,
                tid,
                lane,
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.virtual_start_us,
                    "dur": max(0.0, end - span.virtual_start_us),
                    "pid": _VIRTUAL_PID,
                    "tid": tid,
                    "args": args,
                },
            )

    for event in tracer.events:
        args = {}
        if event.correlation:
            args["correlation"] = dict(event.correlation)
        if event.attributes:
            args.update(event.attributes)
        if event.virtual_us is not None:
            tid, lane = _virtual_tid("events", event.correlation)
            pid, ts = _VIRTUAL_PID, event.virtual_us
        else:
            tid, lane = _host_tid(event.category, event.correlation)
            pid, ts = _HOST_PID, (
                ((event.wall_s or tracer.epoch_s) - tracer.epoch_s) * 1e6
            )
        _add(
            pid,
            tid,
            lane,
            {
                "name": event.name,
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": args,
            },
        )

    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _HOST_PID,
            "tid": 0,
            "args": {"name": "repro · host wall-time"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _VIRTUAL_PID,
            "tid": 0,
            "args": {"name": "repro · cluster virtual-time"},
        },
    ]
    for (pid, tid), lane in sorted(thread_names.items()):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    for key in sorted(lanes):
        trace_events.extend(sorted(lanes[key], key=lambda e: e["ts"]))

    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {"exporter": "repro.telemetry", "dropped_records": tracer.dropped},
    }
    if metadata:
        payload["metadata"].update(metadata)
    return payload


def write_chrome_trace(
    tracer: Tracer, path: Path, metadata: Optional[Dict[str, Any]] = None
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer, metadata=metadata), indent=1))
    return path


# ----------------------------------------------------------------------
# Virtual-clock Gantt lanes from replay results
# ----------------------------------------------------------------------
def _merge_intervals(
    intervals: Iterable[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _subtract(
    start: float, end: float, blockers: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """The parts of ``[start, end)`` not covered by any blocker."""
    exposed: List[Tuple[float, float]] = []
    cursor = start
    for b_start, b_end in blockers:
        if b_end <= cursor:
            continue
        if b_start >= end:
            break
        if b_start > cursor:
            exposed.append((cursor, min(b_start, end)))
        cursor = max(cursor, b_end)
        if cursor >= end:
            break
    if cursor < end:
        exposed.append((cursor, end))
    return exposed


def record_replay_timeline(tracer: Tracer, result: Any, rank: int = 0) -> None:
    """Turn one rank's measured kernel launches into Gantt slices.

    ``result`` is a :class:`~repro.core.replayer.ReplayResult`; its
    ``kernel_launches`` are already windowed to the measured iterations.
    Comm kernels additionally contribute ``exposed-comms`` sub-slices —
    the portions not overlapped by any compute kernel on the same rank,
    mirroring ``TimelineStats.category_exposed_time_us``.
    """
    if not tracer.enabled:
        return
    launches = getattr(result, "kernel_launches", None) or []
    compute: List[Tuple[float, float]] = []
    comms: List[Tuple[float, float, str]] = []
    for launch in launches:
        if launch.start is None or launch.end is None:
            continue
        name = launch.op_name or str(launch.desc)
        # KernelLaunch.category is an OpCategory enum; compare by value.
        category = getattr(launch.category, "value", launch.category)
        if category == "comms":
            comms.append((launch.start, launch.end, name))
            tracer.slice(
                rank, name, "comms", launch.start, max(0.0, launch.end - launch.start)
            )
        else:
            compute.append((launch.start, launch.end))
            tracer.slice(
                rank, name, "compute", launch.start, max(0.0, launch.end - launch.start)
            )
    blockers = _merge_intervals(compute)
    for start, end, name in comms:
        for seg_start, seg_end in _subtract(start, end, blockers):
            tracer.slice(
                rank, name, "exposed-comms", seg_start, max(0.0, seg_end - seg_start)
            )


def record_cluster_timeline(
    tracer: Tracer,
    results_by_rank: Mapping[int, Any],
    collective_events: Iterable[Any] = (),
    measure_start_by_rank: Optional[Mapping[int, float]] = None,
) -> None:
    """Per-rank lanes for a whole cluster replay.

    Kernel compute/comms/exposed slices come from each rank's
    :class:`ReplayResult`; stall slices come from the rendezvous'
    :class:`~repro.cluster.rendezvous.CollectiveEvent` records — for each
    participant, the wait between its arrival and the collective's start,
    windowed to the rank's measured iterations like ``RendezvousStats``.
    """
    if not tracer.enabled:
        return
    for rank, result in sorted(results_by_rank.items()):
        if result is not None:
            record_replay_timeline(tracer, result, rank=rank)
    starts = measure_start_by_rank or {}
    for event in collective_events:
        for rank, arrival in event.arrivals.items():
            if event.start_us < starts.get(rank, 0.0):
                continue
            stall = event.start_us - arrival
            if stall > 0.0:
                tracer.slice(
                    rank,
                    f"stall:{event.key[1]}",
                    "stall",
                    arrival,
                    stall,
                    seq=event.seq,
                )
