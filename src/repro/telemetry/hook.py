"""Pipeline instrumentation: stage boundaries as telemetry spans.

:class:`TelemetryHook` is a :class:`~repro.core.pipeline.ReplayHook`, so
it reaches the replay engine through the same dispatch as every other
hook.  With no hook attached the execute loop's ``notify =
bool(context.hooks)`` branch skips per-op work entirely; with the hook
attached but the tracer disabled, every callback bails after one
attribute read.  Either way the hook is purely observational — it never
touches the config, trace or result, so cache digests and replay output
stay byte-identical.

Each pipeline stage becomes one span named ``stage:<name>`` on the
``pipeline`` category, carrying the wall clock from the tracer and —
once the replay runtime exists — the simulated clock via the pure read
``Runtime.now()`` (never ``synchronize()``, which would *advance* the
virtual clock and change results).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.pipeline import ReplayContext, ReplayHook, ReplayStage
from repro.telemetry.tracer import Span, Tracer


def _virtual_now(context: ReplayContext) -> Optional[float]:
    runtime = getattr(context, "runtime", None)
    if runtime is None:
        return None
    return runtime.now()


class TelemetryHook(ReplayHook):
    """Emits one span per pipeline stage plus resume/error markers.

    ``rank`` (when given) is stamped into every span's correlation so the
    cluster engine can attach one hook per rank to a shared tracer and
    the exporter still tells the lanes apart.
    """

    def __init__(self, tracer: Tracer, rank: Optional[int] = None) -> None:
        self.tracer = tracer
        self._correlation: Dict[str, Any] = {} if rank is None else {"rank": rank}
        self._open: Dict[str, Span] = {}
        #: Plain counter kept even when spans are off — folded into the
        #: metrics registry by whoever owns the hook.
        self.ops_replayed = 0

    # ------------------------------------------------------------------
    # ReplayHook protocol
    # ------------------------------------------------------------------
    def on_stage_start(self, context: ReplayContext, stage: ReplayStage) -> None:
        tracer = self.tracer
        if not tracer.enabled:
            return
        span = tracer.begin(
            f"stage:{stage.name}",
            category="pipeline",
            virtual_start_us=_virtual_now(context),
        )
        if span is not None:
            span.correlation.update(self._correlation)
            self._open[stage.name] = span

    def on_stage_end(self, context: ReplayContext, stage: ReplayStage) -> None:
        tracer = self.tracer
        if not tracer.enabled:
            return
        span = self._open.pop(stage.name, None)
        if span is not None:
            tracer.end(span, virtual_end_us=_virtual_now(context))

    def on_op_replayed(self, context: ReplayContext, entry: Any, output: Any) -> None:
        # Kept to a single integer add: this runs once per replayed op and
        # is what the telemetry_overhead benchmark holds under 5%.
        self.ops_replayed += 1

    def on_resume(self, context: ReplayContext) -> None:
        tracer = self.tracer
        if not tracer.enabled:
            return
        tracer.event(
            "resume",
            category="pipeline",
            virtual_us=_virtual_now(context),
            correlation=self._correlation,
        )

    def on_error(
        self, context: ReplayContext, stage: ReplayStage, error: BaseException
    ) -> None:
        tracer = self.tracer
        if not tracer.enabled:
            return
        span = self._open.pop(stage.name, None)
        if span is not None:
            span.attributes["error"] = repr(error)
            tracer.end(span, virtual_end_us=_virtual_now(context))
        else:
            tracer.event(
                "error",
                category="pipeline",
                virtual_us=_virtual_now(context),
                correlation=self._correlation,
                stage=stage.name,
                error=repr(error),
            )
