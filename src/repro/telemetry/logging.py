"""Structured JSON-lines logging stamped with tracer correlation.

:func:`get_logger` returns a stdlib :class:`logging.Logger` whose
records render as one JSON object per line.  When bound to a
:class:`~repro.telemetry.tracer.Tracer`, every record is stamped with
the calling thread's current correlation scope (``job_id`` /
``sweep_point`` / ``rank`` / ...), so daemon access logs and worker
logs correlate with spans without any caller cooperation.  Extra
structured fields ride along via ``extra={"fields": {...}}``.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Any, Dict, Optional

#: Marker attribute tagging handlers this module installed, so repeated
#: ``get_logger`` calls reconfigure rather than stack handlers.
_HANDLER_TAG = "_repro_structured"


class JsonLineFormatter(logging.Formatter):
    """Render each record as a single JSON line.

    Key order is fixed (``ts``, ``level``, ``logger``, ``message``,
    then correlation, then extra fields sorted) so the lines diff
    cleanly; values are stringified as a last resort rather than
    raising from inside a logging call.
    """

    def __init__(self, tracer: Any = None) -> None:
        super().__init__()
        self.tracer = tracer

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        tracer = self.tracer
        if tracer is not None:
            correlation = tracer.current_correlation()
            if correlation:
                payload["correlation"] = dict(correlation)
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            for key in sorted(fields):
                if key not in payload:
                    payload[key] = fields[key]
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def get_logger(
    name: str = "repro",
    tracer: Any = None,
    stream: Optional[IO[str]] = None,
    level: int = logging.INFO,
) -> logging.Logger:
    """Get-or-configure a structured JSON-lines logger.

    Idempotent per ``name``: calling again rebinds the existing
    handler's tracer/stream instead of stacking a second handler, which
    also lets tests redirect an already-wired logger by name.
    Defaults to ``sys.stderr`` so log lines never corrupt ``--json``
    output on stdout.
    """
    logger = logging.getLogger(name)
    logger.setLevel(level)
    logger.propagate = False
    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_TAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        setattr(handler, _HANDLER_TAG, True)
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    formatter = handler.formatter
    if not isinstance(formatter, JsonLineFormatter):
        formatter = JsonLineFormatter(tracer)
        handler.setFormatter(formatter)
    elif tracer is not None:
        formatter.tracer = tracer
    return logger
