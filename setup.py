"""Packaging for the Mystique reproduction.

The package lives under ``src/`` (the ``src`` layout), so ``package_dir``
maps the root package namespace there.  Kept as a plain ``setup.py`` so
editable installs work in offline environments that lack the ``wheel``
package (pip falls back to the legacy ``setup.py develop`` path).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).resolve().parent


def _read_version() -> str:
    text = (_HERE / "src" / "repro" / "version.py").read_text()
    match = re.search(r'__version__\s*=\s*"([^"]+)"', text)
    assert match is not None, "version.py must define __version__"
    return match.group(1)


def _read_long_description() -> str:
    readme = _HERE / "README.md"
    return readme.read_text() if readme.is_file() else ""


setup(
    name="repro-mystique",
    version=_read_version(),
    description=(
        "Reproduction of Mystique: Enabling Accurate and Scalable Generation "
        "of Production AI Benchmarks (ISCA 2023)"
    ),
    long_description=_read_long_description(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.service.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Topic :: System :: Benchmark",
    ],
)
