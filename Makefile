# Developer entry points. `make test` is the tier-1 gate CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-cluster test-memory test-profiling test-scheduler test-daemon test-telemetry test-insights bench bench-fast lint example-sweep clean

test:
	$(PYTHON) -m pytest -x -q

# Multi-rank distributed replay subsystem: unit/integration tests plus a
# 4-rank DDP smoke replay through the public facade.
test-cluster:
	$(PYTHON) -m pytest tests/test_cluster_replay.py tests/test_collective_costmodel.py -q
	$(PYTHON) examples/cluster_straggler.py

# Device-memory simulation subsystem: allocator/lifetime/timeline tests,
# the allocator property suite, and a CLI smoke run of memory-report.
test-memory:
	$(PYTHON) -m pytest tests/test_memory_subsystem.py tests/test_property_memory.py -q
	$(PYTHON) -m repro memory-report --help > /dev/null

# Replay-throughput profiler + vectorized execute path: aggregation and
# byte-identical-equivalence tests plus a CLI smoke run of `repro profile`.
test-profiling:
	$(PYTHON) -m pytest tests/test_profiling.py tests/test_vectorized_equivalence.py -q
	$(PYTHON) -m repro profile --help > /dev/null

# Event-driven cluster scheduler: the hypothesis property suite (the
# scheduler's contract since the threaded oracle retired) and the
# 1024-rank fleet-throughput benchmark.
test-scheduler:
	$(PYTHON) -m pytest tests/test_property_scheduler.py benchmarks/test_cluster_scale.py -q

# Replay daemon: job queue / REST API / pause-resume-snapshot tests, the
# serialize round-trip suite, and a CLI smoke run of `repro serve`.
test-daemon:
	$(PYTHON) -m pytest tests/test_daemon.py tests/test_serialize_payloads.py -q
	$(PYTHON) -m repro serve --help > /dev/null

# Telemetry subsystem: tracer/metrics/export tests, the byte-identical
# disabled-fast-path suite, and a CLI smoke run of replay-dist --trace-out.
test-telemetry:
	$(PYTHON) -m pytest tests/test_telemetry.py tests/test_telemetry_fastpath.py -q
	$(PYTHON) -m repro replay-dist --help > /dev/null

# Insights subsystem: critical-path / diff / regression analyses, the
# structured-logging satellite, and a CLI smoke run of `repro analyze`.
test-insights:
	$(PYTHON) -m pytest tests/test_insights.py -q
	$(PYTHON) -m repro analyze --help > /dev/null

# After the benchmarks refresh BENCH_replay_throughput.json, the
# regression watchdog checks it against the recorded trajectory
# (BENCH_history.jsonl, appended with --record) and fails the target on
# a perf drop.
bench:
	$(PYTHON) -m pytest benchmarks/ -q
	$(PYTHON) -m repro analyze regressions --record

# Just the replay-engine throughput benchmark: refreshes
# BENCH_replay_throughput.json at the repo root in a few seconds.
bench-fast:
	$(PYTHON) -m pytest benchmarks/test_bench_trajectory.py benchmarks/test_replay_throughput.py -q
	$(PYTHON) -m repro analyze regressions --record

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m repro --version
	$(PYTHON) scripts/check_deprecated_usage.py

example-sweep:
	$(PYTHON) examples/batch_sweep.py

clean:
	rm -rf .pytest_cache .benchmarks examples/trace_repo
	find . -name __pycache__ -type d -exec rm -rf {} +
