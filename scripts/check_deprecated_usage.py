#!/usr/bin/env python3
"""CI guard: the deprecated ``Replayer`` entry point must not be used
inside ``src/`` outside its own shim module.

Every replay in the package goes through ``repro.core.pipeline.ReplayPipeline``
(usually via the ``repro.api`` facade); ``Replayer`` exists only for external
back-compat.  This check fails when any ``src/`` module other than the shim
instantiates it, so deprecated usage cannot creep back into the codebase.

Run from the repository root (``make lint`` does).  Exit code 0 when clean,
1 with a file:line listing otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SRC = Path("src")
SHIM = SRC / "repro" / "core" / "replayer.py"
#: Instantiation of the deprecated class.  Word boundary keeps subclasses
#: and wrappers like ``BatchReplayer(`` out of scope.
PATTERN = re.compile(r"\bReplayer\(")


def main() -> int:
    if not SRC.is_dir():
        print("check_deprecated_usage: run from the repository root", file=sys.stderr)
        return 2
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path == SHIM:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if PATTERN.search(line):
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    if offenders:
        print(
            "deprecated Replayer used directly inside src/ (use repro.api or "
            "repro.core.pipeline.ReplayPipeline instead):",
            file=sys.stderr,
        )
        for offender in offenders:
            print(f"  {offender}", file=sys.stderr)
        return 1
    print("check_deprecated_usage: OK (no direct Replayer use outside the shim)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
