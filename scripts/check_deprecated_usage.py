#!/usr/bin/env python3
"""CI guard against deprecated / banned API usage inside ``src/``.

Five rules, one pass:

* The deprecated ``Replayer`` entry point must not be used inside ``src/``
  outside its own shim module — every replay goes through
  ``repro.core.pipeline.ReplayPipeline`` (usually via ``repro.api``).
* ``BatchReplayer`` must not be constructed outside ``src/repro/service/``
  and ``src/repro/daemon/`` — batch work flows through the facade
  (``repro.api.sweep``), the service layer, or the daemon's job queue, so
  cache policy, error reporting and pause semantics stay in one place.
* ``time.time(`` is banned wherever the package measures *host* durations
  (``src/repro/bench/`` and ``src/repro/profiling/``): it is not monotonic
  (NTP slews and clock steps corrupt measured windows), so all wall-time
  deltas use ``time.perf_counter()``.
* Bare ``print(`` is banned inside ``src/repro/`` outside the CLI and the
  daemon's HTTP front-end: library code reports through return values, the
  telemetry layer (``repro.telemetry``), or an explicit stream
  (``print(..., file=...)`` / ``sys.stderr.write``) — never by writing to
  whatever stdout happens to be attached (which corrupts ``--json`` output
  and daemon logs).
* Direct ``json.dump(s)`` of analysis/CLI payloads is banned inside
  ``src/repro/insights/`` and ``src/repro/service/`` outside
  ``service/serialize.py`` — every ``--json`` and daemon payload renders
  through the shared serializer (``serialize.dumps`` /
  ``serialize.dumps_compact``), so payload shape and encoding policy stay
  in one place.  (``json.loads`` is fine anywhere.)

Run from the repository root (``make lint`` does).  Exit code 0 when clean,
1 with a file:line listing otherwise.  ``tests/test_profiling.py`` drives
:func:`find_offenders` directly to keep the rules themselves honest.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Rule:
    """One banned-usage rule: a pattern, where it applies, and why."""

    name: str
    pattern: re.Pattern
    #: Directories (relative to the repo root) the rule scans.
    roots: Tuple[str, ...]
    message: str
    #: Paths (relative to the repo root) exempt from the rule: exact files,
    #: or whole directories when the entry ends with ``/``.
    exempt: Tuple[str, ...] = field(default=())


RULES = (
    Rule(
        name="deprecated-replayer",
        # Word boundary keeps subclasses and wrappers like
        # ``BatchReplayer(`` out of scope.
        pattern=re.compile(r"\bReplayer\("),
        roots=("src",),
        exempt=("src/repro/core/replayer.py",),
        message=(
            "deprecated Replayer used directly inside src/ (use repro.api or "
            "repro.core.pipeline.ReplayPipeline instead)"
        ),
    ),
    Rule(
        name="direct-batch-replayer",
        # Batch execution policy (cache, error capture, pause semantics)
        # lives in the service layer and the daemon's queue; nothing else
        # constructs the replayer directly.
        pattern=re.compile(r"\bBatchReplayer\("),
        roots=("src",),
        exempt=(
            "src/repro/service/",
            "src/repro/daemon/",
        ),
        message=(
            "BatchReplayer constructed outside service/ and daemon/ (submit "
            "through repro.api.sweep, the service layer, or the daemon queue)"
        ),
    ),
    Rule(
        name="non-monotonic-clock",
        pattern=re.compile(r"\btime\.time\("),
        roots=("src/repro/bench", "src/repro/profiling"),
        message=(
            "time.time() used where host durations are measured (it is not "
            "monotonic; use time.perf_counter())"
        ),
    ),
    Rule(
        name="bare-print",
        # A print( call with no file= argument on the same line.  The
        # lookbehind keeps method calls (self.print(), console.print()) and
        # string literals mentioning print( out of scope.
        pattern=re.compile(r"(?<![\w.\"'])print\((?!.*\bfile\s*=)"),
        roots=("src/repro",),
        exempt=(
            "src/repro/service/cli.py",
            "src/repro/daemon/server.py",
        ),
        message=(
            "bare print() in library code (route output through return "
            "values, repro.telemetry, or an explicit print(..., file=...))"
        ),
    ),
    Rule(
        name="serializer-bypass",
        # Matches json.dump( and json.dumps( but not json.loads(.
        pattern=re.compile(r"\bjson\.dumps?\("),
        roots=("src/repro/insights", "src/repro/service"),
        exempt=(
            "src/repro/service/serialize.py",
            # The result cache persists its own entries; not a payload
            # anything prints or serves.
            "src/repro/service/cache.py",
        ),
        message=(
            "json.dump(s) of an analysis/CLI payload outside "
            "service/serialize.py (render through serialize.dumps / "
            "serialize.dumps_compact so payload shapes stay in one place)"
        ),
    ),
)


def find_offenders(root: Path = Path(".")) -> Dict[str, List[str]]:
    """Scan the tree under ``root``; rule name -> ``file:line: text`` hits."""
    offenders: Dict[str, List[str]] = {}
    for rule in RULES:
        exempt_files = {root / path for path in rule.exempt if not path.endswith("/")}
        exempt_dirs = [root / path for path in rule.exempt if path.endswith("/")]
        for scan_root in rule.roots:
            base = root / scan_root
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                if path in exempt_files:
                    continue
                if any(directory in path.parents for directory in exempt_dirs):
                    continue
                for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                    if rule.pattern.search(line):
                        offenders.setdefault(rule.name, []).append(
                            f"{path}:{lineno}: {line.strip()}"
                        )
    return offenders


def main() -> int:
    if not Path("src").is_dir():
        print("check_deprecated_usage: run from the repository root", file=sys.stderr)
        return 2
    offenders = find_offenders()
    if offenders:
        messages = {rule.name: rule.message for rule in RULES}
        for name, hits in sorted(offenders.items()):
            print(f"{messages[name]}:", file=sys.stderr)
            for hit in hits:
                print(f"  {hit}", file=sys.stderr)
        return 1
    print(f"check_deprecated_usage: OK ({len(RULES)} rules, no offenders)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
