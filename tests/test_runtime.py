"""Unit tests for the simulated runtime (dispatch, clocks, streams, threads)."""

import pytest

from repro.torchsim import Runtime, Tensor, ExecutionGraphObserver, Profiler
from repro.torchsim.kernel import KernelDesc, KernelKind
from repro.torchsim.stream import COMM_STREAM, DEFAULT_COMPUTE_STREAM


class TestDispatchAndClocks:
    def test_cpu_clock_advances_on_dispatch(self):
        rt = Runtime("A100")
        before = rt.now()
        rt.call("aten::relu", Tensor.empty((16,)))
        assert rt.now() > before

    def test_gpu_runs_asynchronously(self):
        rt = Runtime("A100")
        rt.call("aten::mm", Tensor.empty((2048, 2048)), Tensor.empty((2048, 2048)))
        # The CPU has only paid dispatch + launch overhead; the kernel is
        # still outstanding on the GPU.
        assert rt.gpu.device_ready_time() > rt.now()

    def test_synchronize_joins_cpu_and_gpu(self):
        rt = Runtime("A100")
        rt.call("aten::mm", Tensor.empty((2048, 2048)), Tensor.empty((2048, 2048)))
        ready = rt.synchronize()
        assert ready == pytest.approx(rt.gpu.device_ready_time())
        assert rt.now() == pytest.approx(ready)

    def test_unknown_operator_raises(self):
        rt = Runtime("A100")
        with pytest.raises(KeyError):
            rt.call("aten::does_not_exist", Tensor.empty((1,)))

    def test_nested_calls_cheaper_than_top_level(self):
        rt = Runtime("A100")
        start = rt.now()
        rt.call("aten::t", Tensor.empty((8, 8)))  # composite: t -> transpose -> as_strided
        elapsed = rt.now() - start
        # Three dispatches, but the nested two are discounted.
        full = rt.spec.dispatch_overhead_us
        assert elapsed < 3 * full
        assert elapsed > full

    def test_cpu_device_spec_accepted(self):
        rt = Runtime("CPU")
        rt.call("aten::relu", Tensor.empty((16,)))
        assert rt.gpu.launches  # the CPU "device" still executes kernels


class TestThreadsAndStreams:
    def test_thread_scope_switches_and_restores(self):
        rt = Runtime("A100")
        assert rt.current_thread == "main"
        with rt.thread("autograd"):
            assert rt.current_thread == "autograd"
        assert rt.current_thread == "main"

    def test_thread_clock_starts_at_parent_time(self):
        rt = Runtime("A100")
        rt.advance_cpu(100.0)
        with rt.thread("autograd"):
            assert rt.now() >= 100.0

    def test_parent_thread_joins_child_on_exit(self):
        rt = Runtime("A100")
        with rt.thread("autograd"):
            rt.advance_cpu(500.0)
        assert rt.now("main") >= 500.0

    def test_stream_scope(self):
        rt = Runtime("A100")
        assert rt.current_stream == DEFAULT_COMPUTE_STREAM
        with rt.stream(COMM_STREAM):
            assert rt.current_stream == COMM_STREAM
        assert rt.current_stream == DEFAULT_COMPUTE_STREAM

    def test_call_with_stream_override_places_kernel(self):
        rt = Runtime("A100")
        rt.call("aten::relu", Tensor.empty((1024,)), stream=COMM_STREAM)
        assert rt.gpu.launches[0].stream_id == COMM_STREAM

    def test_kernels_on_same_stream_serialize(self):
        rt = Runtime("A100")
        rt.call("aten::mm", Tensor.empty((1024, 1024)), Tensor.empty((1024, 1024)))
        rt.call("aten::mm", Tensor.empty((1024, 1024)), Tensor.empty((1024, 1024)))
        first, second = rt.gpu.launches
        assert second.start >= first.end

    def test_kernels_on_different_streams_can_overlap(self):
        rt = Runtime("A100")
        rt.call("aten::mm", Tensor.empty((4096, 4096)), Tensor.empty((4096, 4096)))
        rt.call("aten::relu", Tensor.empty((64,)), stream=COMM_STREAM)
        compute, side = rt.gpu.launches
        assert side.start < compute.end


class TestRecordFunctionAndObservers:
    def test_record_function_creates_annotation_node(self):
        rt = Runtime("A100")
        observer = rt.attach_observer(ExecutionGraphObserver())
        observer.register_callback(None)
        observer.start()
        with rt.record_function("## forward ##"):
            rt.call("aten::relu", Tensor.empty((16,)))
        observer.stop()
        trace = observer.trace
        labels = trace.find_by_label("## forward ##")
        assert len(labels) == 1
        assert not labels[0].is_operator
        children = trace.children(labels[0].id)
        assert [c.name for c in children] == ["aten::relu"]

    def test_profiler_records_cpu_and_kernel_events(self):
        rt = Runtime("A100")
        profiler = rt.attach_profiler(Profiler())
        with profiler:
            rt.call("aten::mm", Tensor.empty((64, 64)), Tensor.empty((64, 64)))
        assert len(profiler.trace.cpu_ops()) == 1
        assert len(profiler.trace.kernels()) == 1
        kernel = profiler.trace.kernels()[0]
        assert kernel.op_node_id == profiler.trace.cpu_ops()[0].op_node_id

    def test_observer_disabled_records_nothing(self):
        rt = Runtime("A100")
        observer = rt.attach_observer(ExecutionGraphObserver())
        observer.register_callback(None)
        rt.call("aten::relu", Tensor.empty((16,)))
        assert observer.trace is None

    def test_launch_kernel_blocking_advances_cpu(self):
        rt = Runtime("A100")
        desc = KernelDesc(name="k", kind=KernelKind.GEMM, flops=1e9)
        launch = rt.launch_kernel(desc, blocking=True)
        assert rt.now() >= launch.end

    def test_power_limit_slows_kernels(self):
        fast = Runtime("A100")
        slow = Runtime("A100", power_limit_w=150.0)
        fast.call("aten::mm", Tensor.empty((2048, 2048)), Tensor.empty((2048, 2048)))
        slow.call("aten::mm", Tensor.empty((2048, 2048)), Tensor.empty((2048, 2048)))
        assert slow.gpu.launches[0].duration > fast.gpu.launches[0].duration
