"""Integration tests tying the pipeline to the paper's headline claims.

Each test mirrors one evaluation claim at reduced scale, so the full-size
benchmarks in ``benchmarks/`` regenerate the actual tables/figures while the
test suite guards the qualitative behaviour.
"""

import pytest

from repro.bench.harness import capture_workload, compare_workload, replay_capture
from repro.core.replayer import ReplayConfig, Replayer
from repro.core.registry import ReplaySupport
from repro.et.analyzer import ETAnalyzer
from repro.et.comparator import TraceComparator
from repro.hardware.power import PowerModel
from repro.hardware.specs import A100, NEW_PLATFORM, V100, XEON_CPU
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from tests.conftest import make_small_rm


def linear_workload():
    return ParamLinearWorkload(
        ParamLinearConfig(batch_size=128, num_layers=6, hidden_size=512, input_size=512)
    )


class TestTable4Claim:
    """Replay execution time closely matches the (calibrated) original."""

    def test_replay_error_within_ten_percent(self, small_resnet):
        for workload in (linear_workload(), small_resnet, make_small_rm()):
            comparison = compare_workload(workload)
            assert comparison.replay_error < 0.10, workload.name


class TestFigure5Claim:
    """System-level metrics of the replay track the original."""

    def test_macro_metrics_within_fifteen_percent(self):
        comparison = compare_workload(linear_workload())
        report = TraceComparator().compare_metrics(
            comparison.original_metrics.as_dict(), comparison.replay_metrics.as_dict()
        )
        assert report.passes(threshold=0.15)


class TestFigure6Claim:
    """Micro-architectural counters of the replayed kernels match."""

    def test_per_kernel_counters_match(self):
        from repro.bench.metrics import kernel_counters_by_name, top_kernel_names

        capture = capture_workload(linear_workload(), warmup_iterations=0)
        replay = replay_capture(capture)
        original_counters = kernel_counters_by_name(capture.kernel_launches, A100)
        replay_counters = kernel_counters_by_name(replay.kernel_launches, A100)
        for name in top_kernel_names(capture.kernel_launches, top_k=5):
            assert name in replay_counters
            original = original_counters[name]
            replayed = replay_counters[name]
            assert replayed.ipc == pytest.approx(original.ipc, rel=0.05)
            assert replayed.l1_hit_rate == pytest.approx(original.l1_hit_rate, abs=0.05)
            assert replayed.sm_throughput == pytest.approx(original.sm_throughput, rel=0.05)


class TestFigure7Claim:
    """Benchmarks generated from an A100 trace are portable across platforms."""

    @pytest.mark.parametrize("device", ["CPU", "V100", "A100"])
    def test_replay_matches_original_on_each_platform(self, device):
        workload = linear_workload()
        capture = capture_workload(workload, device="A100", warmup_iterations=0)
        from repro.bench.harness import run_original

        original = run_original(workload, device=device, iterations=1, warmup_iterations=0)
        replay = Replayer(
            capture.execution_trace, capture.profiler_trace, ReplayConfig(device=device)
        ).run()
        assert replay.mean_iteration_time_us == pytest.approx(
            original.mean_iteration_time_us, rel=0.15
        )

    def test_relative_speed_ordering_preserved(self):
        workload = linear_workload()
        capture = capture_workload(workload, device="A100", warmup_iterations=0)
        times = {}
        for device in ("CPU", "V100", "A100"):
            replay = Replayer(
                capture.execution_trace, capture.profiler_trace, ReplayConfig(device=device)
            ).run()
            times[device] = replay.mean_iteration_time_us
        assert times["CPU"] > times["V100"] > times["A100"]


class TestFigure8Claim:
    """Power-efficiency curves of replay track the original under power caps."""

    def test_efficiency_curve_shape_matches(self):
        workload = linear_workload()
        capture = capture_workload(workload, device="A100", warmup_iterations=0)
        original_curve = []
        replay_curve = []
        for limit in (150.0, 250.0, 400.0):
            from repro.bench.harness import run_original

            original = run_original(workload, iterations=1, warmup_iterations=0, power_limit_w=limit)
            power_model = PowerModel(A100, limit)
            original_eff = power_model.energy_efficiency(
                1.0, original.mean_iteration_time_us,
                original.timeline_stats.busy_fraction, original.timeline_stats.sm_utilization,
            )
            replay = Replayer(
                capture.execution_trace, capture.profiler_trace,
                ReplayConfig(device="A100", power_limit_w=limit),
            ).run()
            replay_eff = power_model.energy_efficiency(
                1.0, replay.mean_iteration_time_us,
                replay.timeline_stats.busy_fraction, replay.timeline_stats.sm_utilization,
            )
            original_curve.append(original_eff)
            replay_curve.append(replay_eff)
            assert replay_eff == pytest.approx(original_eff, rel=0.15)
        # Efficiency changes monotonically in the same direction for both.
        original_trend = [b - a for a, b in zip(original_curve, original_curve[1:])]
        replay_trend = [b - a for a, b in zip(replay_curve, replay_curve[1:])]
        for original_delta, replay_delta in zip(original_trend, replay_trend):
            assert (original_delta >= 0) == (replay_delta >= 0)


class TestFigure10Claim:
    """Early-stage platform evaluation: the replay predicts the new platform's win."""

    def test_new_platform_speedup_predicted(self):
        workload = linear_workload()
        capture = capture_workload(workload, device="A100", warmup_iterations=0)
        replay_times = {}
        for device in ("CPU", "A100", "NewPlatform"):
            replay = Replayer(
                capture.execution_trace, capture.profiler_trace, ReplayConfig(device=device)
            ).run()
            replay_times[device] = replay.mean_iteration_time_us
        speedup_a100 = replay_times["CPU"] / replay_times["A100"]
        speedup_new = replay_times["CPU"] / replay_times["NewPlatform"]
        assert speedup_new > speedup_a100 > 1.0


class TestFigure2Claim:
    """ATen operators dominate count and time; communication is visible."""

    def test_rm_distributed_breakdown(self):
        from repro.torchsim.distributed import DistributedContext
        from repro.torchsim.runtime import Runtime

        dist = DistributedContext(rank=0, world_size=8)
        runtime = Runtime("A100", dist=dist)
        capture = capture_workload(make_small_rm(0, 8), warmup_iterations=0, runtime=runtime)
        breakdown = ETAnalyzer(capture.execution_trace, capture.profiler_trace).category_breakdown()
        count_fractions = breakdown.count_fractions()
        assert count_fractions["aten"] > 0.5
        assert count_fractions["comms"] > 0.0
        assert breakdown.gpu_exposed_time_us.get("comms", 0.0) >= 0.0


class TestCustomOpInterfaceClaim:
    """Registering custom operators raises coverage (Section 6.3)."""

    def test_asr_coverage_with_and_without_fairseq(self, small_asr):
        capture = capture_workload(small_asr, warmup_iterations=0)
        default = replay_capture(capture)
        support = ReplaySupport()
        support.register_library("fairseq")
        extended = replay_capture(capture, support=support)
        assert default.coverage.time_coverage < 0.95
        assert extended.coverage.time_coverage > default.coverage.time_coverage
        assert extended.coverage.count_coverage >= default.coverage.count_coverage
