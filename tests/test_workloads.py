"""Tests for the four evaluated workloads and the distributed runner."""

import pytest

from repro.et.analyzer import ETAnalyzer, categorize_node
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.kernel import OpCategory
from repro.torchsim.runtime import Runtime
from repro.workloads import WORKLOAD_FACTORIES, build_workload
from repro.workloads.ddp import DistributedRunner
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from repro.workloads.resnet import ResNetConfig, ResNetWorkload
from repro.bench.harness import capture_workload
from tests.conftest import make_small_rm


class TestWorkloadRegistry:
    def test_all_four_paper_workloads_available(self):
        assert set(WORKLOAD_FACTORIES) == {"param_linear", "resnet", "asr", "rm"}

    def test_build_workload_by_name(self):
        workload = build_workload("param_linear", config=ParamLinearConfig(num_layers=2, batch_size=8))
        assert workload.name == "param_linear"

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="known workloads"):
            build_workload("gpt17")


class TestParamLinear:
    def test_operator_mix_is_pure_aten(self, small_param_linear):
        capture = capture_workload(small_param_linear, warmup_iterations=0)
        categories = {categorize_node(node) for node in capture.execution_trace.operators()}
        assert categories == {"aten"}

    def test_layer_count_reflected_in_linear_ops(self, small_param_linear):
        capture = capture_workload(small_param_linear, warmup_iterations=0)
        linears = capture.execution_trace.find_by_name("aten::linear")
        assert len(linears) == small_param_linear.config.num_layers

    def test_forward_label_present(self, small_param_linear):
        capture = capture_workload(small_param_linear, warmup_iterations=0)
        assert capture.execution_trace.find_by_label("## forward ##")

    def test_iteration_time_scales_with_depth(self):
        shallow = ParamLinearWorkload(ParamLinearConfig(num_layers=2, batch_size=64, hidden_size=512, input_size=512))
        deep = ParamLinearWorkload(ParamLinearConfig(num_layers=8, batch_size=64, hidden_size=512, input_size=512))
        shallow_capture = capture_workload(shallow, warmup_iterations=0)
        deep_capture = capture_workload(deep, warmup_iterations=0)
        assert deep_capture.iteration_time_us > 2 * shallow_capture.iteration_time_us

    def test_repeated_iterations_are_stable(self, small_param_linear):
        runtime = Runtime("A100")
        times = small_param_linear.run_training(runtime, 3)
        assert len(times) == 3
        assert max(times) - min(times) < 0.05 * max(times)


class TestResNet:
    def test_conv_bn_and_pool_ops_present(self, small_resnet):
        capture = capture_workload(small_resnet, warmup_iterations=0)
        names = {node.name for node in capture.execution_trace.operators()}
        assert {"aten::conv2d", "aten::batch_norm", "aten::max_pool2d", "aten::linear"} <= names
        assert "aten::convolution_backward" in names

    def test_residual_adds_present(self, small_resnet):
        capture = capture_workload(small_resnet, warmup_iterations=0)
        assert capture.execution_trace.find_by_name("aten::add")

    def test_parameter_count_reasonable(self):
        # Full ResNet-18 has ~11.7M parameters; the structural model should
        # be in that ballpark.
        workload = ResNetWorkload(ResNetConfig())
        total = sum(p.numel for p in workload.parameters())
        assert 10e6 < total < 14e6

    def test_gpu_dominated_iteration(self, small_resnet):
        capture = capture_workload(small_resnet, warmup_iterations=0)
        assert capture.timeline_stats.busy_fraction > 0.5


class TestASR:
    def test_custom_lstm_ops_present(self, small_asr):
        capture = capture_workload(small_asr, warmup_iterations=0)
        names = [node.name for node in capture.execution_trace.operators()]
        assert names.count("fairseq::lstm_layer") == small_asr.config.num_lstm_layers
        assert "fairseq::specaugment" in names
        assert "fused::TensorExprGroup" in names

    def test_custom_ops_are_small_fraction_of_count(self, small_asr):
        capture = capture_workload(small_asr, warmup_iterations=0)
        analyzer = ETAnalyzer(capture.execution_trace, capture.profiler_trace)
        fractions = analyzer.category_breakdown().count_fractions()
        assert fractions["custom"] < 0.2
        assert fractions["aten"] > 0.7

    def test_custom_ops_significant_fraction_of_gpu_time(self, small_asr):
        capture = capture_workload(small_asr, warmup_iterations=0)
        analyzer = ETAnalyzer(capture.execution_trace, capture.profiler_trace)
        exposed = analyzer.category_breakdown().gpu_exposed_fractions()
        assert exposed["custom"] > 0.05


class TestRM:
    def test_embedding_and_custom_ops_present(self, small_rm):
        capture = capture_workload(small_rm, warmup_iterations=0)
        names = {node.name for node in capture.execution_trace.operators()}
        assert "fbgemm::split_embedding_codegen_lookup_function" in names
        assert "internal::sparse_data_preproc" in names
        assert "aten::bmm" in names

    def test_lookup_indices_have_payload(self, small_rm):
        assert small_rm.lookup_indices.data is not None
        assert small_rm.lookup_indices.data.max() < small_rm.config.rows_per_table

    def test_embedding_tables_excluded_from_dense_optimizer(self, small_rm):
        assert small_rm.embedding_weights not in small_rm.parameters()

    def test_distributed_rm_issues_alltoall_and_allreduce(self):
        dist = DistributedContext(rank=0, world_size=4)
        runtime = Runtime("A100", dist=dist)
        workload = make_small_rm(rank=0, world_size=4)
        capture = capture_workload(workload, warmup_iterations=0, runtime=runtime)
        names = [node.name for node in capture.execution_trace.operators()]
        assert "c10d::all_to_all" in names
        assert "c10d::all_reduce" in names

    def test_table_sharding_across_ranks(self):
        workloads = [make_small_rm(rank=rank, world_size=4) for rank in range(4)]
        assert sum(w.local_tables for w in workloads) == workloads[0].config.num_tables


class TestDistributedRunner:
    def test_per_rank_captures(self):
        runner = DistributedRunner(lambda rank, world: make_small_rm(rank, world), world_size=4)
        captures = runner.run(ranks_to_simulate=2)
        assert len(captures) == 2
        for rank, capture in enumerate(captures):
            assert capture.rank == rank
            assert capture.execution_trace.metadata["world_size"] == 4
            assert capture.iteration_time_us > 0

    def test_aggregate_metrics(self):
        runner = DistributedRunner(lambda rank, world: make_small_rm(rank, world), world_size=4)
        captures = runner.run(ranks_to_simulate=2)
        aggregate = DistributedRunner.aggregate_metrics(captures)
        assert set(aggregate) == {
            "execution_time_ms", "sm_utilization_pct", "hbm_bandwidth_gbps", "gpu_power_w",
        }
        assert aggregate["execution_time_ms"] > 0

    def test_distributed_slower_than_single_gpu(self):
        single = capture_workload(make_small_rm(), warmup_iterations=0)
        runner = DistributedRunner(lambda rank, world: make_small_rm(rank, world), world_size=16)
        distributed = runner.run(ranks_to_simulate=1)[0]
        # Communication makes the distributed per-iteration time longer for
        # this fixed per-rank problem size.
        assert distributed.iteration_time_us > single.iteration_time_us

    def test_invalid_world_size_rejected(self):
        with pytest.raises(ValueError):
            DistributedRunner(lambda rank, world: make_small_rm(rank, world), world_size=0)

    def test_aggregate_of_empty_list(self):
        assert DistributedRunner.aggregate_metrics([]) == {}
