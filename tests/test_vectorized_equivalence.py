"""Byte-identical equivalence of the vectorized and scalar execute paths.

The vectorized executor (:mod:`repro.core.vectorize`) is an execution
*strategy*: it may only change how fast the replay engine runs, never what
it measures.  These tests pin that contract at full strength — not "close
enough" float comparisons but exact equality of every observable:

* the cached summary (``summarize().to_dict()``), float-for-float,
* every kernel launch (timestamps, durations, stream placement,
  correlation ids) in order,
* every virtual profiler event (``profile=True`` replays),
* and the service layer's cache identity: ``vectorized`` is excluded from
  ``ReplayConfig.to_dict()``/``digest()``, so both modes share one cache
  entry.

A hypothesis property sweep varies the workload shapes (PARAM-linear, RM,
DDP-RM) so the equivalence holds across program structures — repeated op
groups, embedding lookups, and scalar-forever comms ops alike.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import repro.api as api
from repro.core.replayer import ReplayConfig
from repro.workloads.ddp import DistributedRunner
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from repro.workloads.rm import RMConfig, RMWorkload

from tests.conftest import make_small_rm


def _launch_key(launch):
    return (
        launch.op_name,
        launch.op_node_id,
        launch.correlation_id,
        launch.stream_id,
        launch.category,
        launch.desc.name,
        launch.launch_ts,
        launch.duration,
        launch.start,
        launch.end,
    )


def assert_equivalent(trace, profiler_trace=None, iterations=2, warmup=1, profile=True):
    """Replay both ways and assert every observable is byte-identical."""

    def run(vectorized: bool):
        config = ReplayConfig(
            iterations=iterations,
            warmup_iterations=warmup,
            profile=profile,
            vectorized=vectorized,
        )
        return api.replay(trace, profiler_trace=profiler_trace, config=config).run()

    scalar = run(False)
    fast = run(True)

    # Scalar measurements, exact — the cache stores these.
    assert fast.summarize().to_dict() == scalar.summarize().to_dict()
    assert fast.iteration_times_us == scalar.iteration_times_us

    # The full kernel schedule, launch for launch.
    assert len(fast.kernel_launches) == len(scalar.kernel_launches)
    for fast_launch, scalar_launch in zip(fast.kernel_launches, scalar.kernel_launches):
        assert _launch_key(fast_launch) == _launch_key(scalar_launch)

    # The virtual profiler trace, event for event.
    if profile:
        fast_events = [event.to_dict() for event in fast.profiler_trace.events]
        scalar_events = [event.to_dict() for event in scalar.profiler_trace.events]
        assert fast_events == scalar_events
    return scalar, fast


# ----------------------------------------------------------------------
# Cache identity
# ----------------------------------------------------------------------
class TestCacheIdentity:
    def test_vectorized_is_excluded_from_canonical_form(self):
        assert "vectorized" not in ReplayConfig().to_dict()
        assert "vectorized" not in ReplayConfig(vectorized=False).to_dict()

    def test_both_modes_share_one_cache_digest(self):
        fast = ReplayConfig(device="V100", iterations=3, vectorized=True)
        scalar = ReplayConfig(device="V100", iterations=3, vectorized=False)
        assert fast.digest() == scalar.digest()

    def test_from_dict_still_accepts_vectorized(self):
        config = ReplayConfig.from_dict({"vectorized": False})
        assert config.vectorized is False


# ----------------------------------------------------------------------
# Fixed-shape equivalence (fast, always run in full)
# ----------------------------------------------------------------------
class TestEquivalenceFixedShapes:
    def test_param_linear(self, small_linear_capture):
        assert_equivalent(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
        )

    def test_rm(self, small_rm):
        capture = api.capture(small_rm)
        assert_equivalent(capture.execution_trace, capture.profiler_trace)

    def test_ddp_rm_single_rank_replay(self):
        runner = DistributedRunner(
            lambda rank, world_size: make_small_rm(rank, world_size), world_size=2
        )
        capture = runner.run_rank(0)
        scalar, fast = assert_equivalent(
            capture.execution_trace, capture.profiler_trace
        )
        # Comms ops are scalar-forever in the vectorized executor but must
        # still replay (not skip): both paths replay the same op count.
        assert fast.replayed_ops == scalar.replayed_ops > 0

    def test_profile_disabled_replay_is_also_identical(self, small_linear_capture):
        assert_equivalent(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            profile=False,
        )

    def test_single_measured_iteration_without_warmup(self, small_linear_capture):
        # No warm-up means the vectorized executor captures/verifies its
        # programs *inside* the measured region — still byte-identical.
        assert_equivalent(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            iterations=1,
            warmup=0,
        )

    def test_cluster_replay_is_identical_either_way(self):
        runner = DistributedRunner(
            lambda rank, world_size: make_small_rm(rank, world_size), world_size=2
        )
        captures = runner.run()

        def run(vectorized: bool):
            return (
                api.replay_cluster(captures)
                .configure(vectorized=vectorized)
                .iterations(2, warmup=1)
                .run()
            )

        scalar, fast = run(False), run(True)
        assert fast.to_dict() == scalar.to_dict()


# ----------------------------------------------------------------------
# Property sweep over workload shapes
# ----------------------------------------------------------------------
class TestEquivalenceProperties:
    @settings(max_examples=5, deadline=None)
    @given(
        num_layers=st.integers(min_value=1, max_value=3),
        hidden_size=st.sampled_from([8, 16, 32]),
        batch_size=st.sampled_from([4, 16]),
    )
    def test_param_linear_shapes(self, num_layers, hidden_size, batch_size):
        workload = ParamLinearWorkload(
            ParamLinearConfig(
                batch_size=batch_size,
                num_layers=num_layers,
                hidden_size=hidden_size,
                input_size=hidden_size,
            )
        )
        capture = api.capture(workload)
        assert_equivalent(capture.execution_trace, capture.profiler_trace)

    @settings(max_examples=3, deadline=None)
    @given(
        num_tables=st.integers(min_value=2, max_value=4),
        embedding_dim=st.sampled_from([8, 16]),
        pooling_factor=st.integers(min_value=1, max_value=4),
    )
    def test_rm_shapes(self, num_tables, embedding_dim, pooling_factor):
        workload = RMWorkload(
            RMConfig(
                batch_size=16,
                num_tables=num_tables,
                rows_per_table=500,
                embedding_dim=embedding_dim,
                pooling_factor=pooling_factor,
                bottom_mlp=(16, 8),
                top_mlp=(32, 16),
            )
        )
        capture = api.capture(workload)
        assert_equivalent(capture.execution_trace, capture.profiler_trace)

    @settings(max_examples=2, deadline=None)
    @given(world_size=st.integers(min_value=2, max_value=3))
    def test_ddp_rm_shapes(self, world_size):
        runner = DistributedRunner(
            lambda rank, ws: make_small_rm(rank, ws), world_size=world_size
        )
        capture = runner.run_rank(0)
        assert_equivalent(capture.execution_trace, capture.profiler_trace)
