"""Behavioural tests of the ATen operator implementations."""

import pytest

from repro.torchsim import Runtime, Tensor
from repro.torchsim.dtypes import DType
from repro.torchsim.kernel import KernelKind


@pytest.fixture
def rt():
    return Runtime("A100")


class TestShapeInference:
    def test_linear_output_shape(self, rt):
        out = rt.call("aten::linear", Tensor.empty((32, 128)), Tensor.empty((64, 128)), Tensor.empty((64,)))
        assert out.shape == (32, 64)

    def test_linear_3d_input(self, rt):
        out = rt.call("aten::linear", Tensor.empty((8, 16, 128)), Tensor.empty((64, 128)), None)
        assert out.shape == (8, 16, 64)

    def test_mm_output_shape(self, rt):
        out = rt.call("aten::mm", Tensor.empty((10, 20)), Tensor.empty((20, 30)))
        assert out.shape == (10, 30)

    def test_bmm_output_shape(self, rt):
        out = rt.call("aten::bmm", Tensor.empty((4, 10, 20)), Tensor.empty((4, 20, 30)))
        assert out.shape == (4, 10, 30)

    def test_matmul_dispatches_to_mm(self, rt):
        out = rt.call("aten::matmul", Tensor.empty((10, 20)), Tensor.empty((20, 5)))
        assert out.shape == (10, 5)

    def test_conv2d_output_shape(self, rt):
        out = rt.call(
            "aten::conv2d", Tensor.empty((2, 3, 32, 32)), Tensor.empty((16, 3, 3, 3)), None,
            [1, 1], [1, 1], [1, 1], 1,
        )
        assert out.shape == (2, 16, 32, 32)

    def test_conv2d_strided_output_shape(self, rt):
        out = rt.call(
            "aten::conv2d", Tensor.empty((2, 3, 32, 32)), Tensor.empty((16, 3, 3, 3)), None,
            [2, 2], [1, 1], [1, 1], 1,
        )
        assert out.shape == (2, 16, 16, 16)

    def test_max_pool2d_halves_spatial_dims(self, rt):
        out = rt.call("aten::max_pool2d", Tensor.empty((2, 16, 32, 32)), [2, 2], [2, 2], [0, 0], [1, 1], False)
        assert out.shape == (2, 16, 16, 16)

    def test_adaptive_avg_pool_output(self, rt):
        out = rt.call("aten::adaptive_avg_pool2d", Tensor.empty((2, 16, 7, 7)), [1, 1])
        assert out.shape == (2, 16, 1, 1)

    def test_cat_concatenates_along_dim(self, rt):
        out = rt.call("aten::cat", [Tensor.empty((2, 3)), Tensor.empty((2, 5))], 1)
        assert out.shape == (2, 8)

    def test_view_resolves_minus_one(self, rt):
        out = rt.call("aten::view", Tensor.empty((4, 6)), [2, -1])
        assert out.shape == (2, 12)

    def test_flatten(self, rt):
        out = rt.call("aten::flatten", Tensor.empty((2, 3, 4, 5)), 1, -1)
        assert out.shape == (2, 60)

    def test_transpose_swaps_dims(self, rt):
        out = rt.call("aten::transpose", Tensor.empty((3, 5)), 0, 1)
        assert out.shape == (5, 3)

    def test_t_is_composite_of_transpose(self, rt):
        out = rt.call("aten::t", Tensor.empty((3, 5)))
        assert out.shape == (5, 3)

    def test_embedding_bag_output_shape(self, rt):
        weight = Tensor.empty((1000, 64))
        indices = Tensor.from_indices(range(128))
        offsets = Tensor.empty((32,), dtype=DType.INT64)
        out = rt.call("aten::embedding_bag", weight, indices, offsets, False, 0, False)
        assert out.shape == (32, 64)

    def test_sum_returns_scalar(self, rt):
        out = rt.call("aten::sum", Tensor.empty((8, 8)))
        assert out.shape == ()

    def test_convolution_backward_returns_three_grads(self, rt):
        grads = rt.call(
            "aten::convolution_backward", Tensor.empty((2, 16, 32, 32)),
            Tensor.empty((2, 3, 32, 32)), Tensor.empty((16, 3, 3, 3)), [1, 1], [1, 1], 1,
        )
        assert len(grads) == 3
        assert grads[1].shape == (16, 3, 3, 3)


class TestKernelLaunching:
    def test_linear_launches_one_gemm(self, rt):
        rt.call("aten::linear", Tensor.empty((32, 128)), Tensor.empty((64, 128)), Tensor.empty((64,)))
        gemms = [k for k in rt.gpu.launches if k.desc.kind == KernelKind.GEMM]
        assert len(gemms) == 1

    def test_view_ops_launch_no_kernels(self, rt):
        rt.call("aten::view", Tensor.empty((4, 4)), [16])
        rt.call("aten::t", Tensor.empty((4, 4)))
        assert rt.gpu.launches == []

    def test_relu_launches_elementwise_kernel(self, rt):
        rt.call("aten::relu", Tensor.empty((1024,)))
        assert len(rt.gpu.launches) == 1
        assert rt.gpu.launches[0].desc.kind == KernelKind.ELEMENTWISE

    def test_dropout_eval_mode_launches_nothing(self, rt):
        rt.call("aten::dropout", Tensor.empty((1024,)), 0.5, False)
        assert rt.gpu.launches == []

    def test_conv_with_bias_launches_two_kernels(self, rt):
        rt.call(
            "aten::conv2d", Tensor.empty((2, 3, 8, 8)), Tensor.empty((4, 3, 3, 3)),
            Tensor.empty((4,)), [1, 1], [1, 1], [1, 1], 1,
        )
        assert len(rt.gpu.launches) == 2

    def test_memcpy_kernel_for_copy(self, rt):
        rt.call("aten::copy_", Tensor.empty((256,)), Tensor.empty((256,)), False)
        assert rt.gpu.launches[0].desc.kind == KernelKind.MEMCPY

    def test_gemm_flops_scale_with_problem_size(self, rt):
        rt.call("aten::mm", Tensor.empty((64, 64)), Tensor.empty((64, 64)))
        rt.call("aten::mm", Tensor.empty((128, 128)), Tensor.empty((128, 128)))
        small, large = [k.desc.flops for k in rt.gpu.launches]
        assert large == pytest.approx(small * 8)

    def test_larger_gemm_takes_longer(self, rt):
        rt.call("aten::mm", Tensor.empty((64, 64)), Tensor.empty((64, 64)))
        rt.call("aten::mm", Tensor.empty((1024, 1024)), Tensor.empty((1024, 1024)))
        small, large = [k.duration for k in rt.gpu.launches]
        assert large > small


class TestEmbeddingValueSensitivity:
    def test_concentrated_indices_yield_higher_locality(self, rt):
        weight = Tensor.empty((100_000, 64))
        offsets = Tensor.empty((64,), dtype=DType.INT64)
        hot = Tensor.from_indices([7] * 4096)
        cold = Tensor.from_indices(range(4096))
        rt.call("aten::embedding_bag", weight, hot, offsets, False, 0, False)
        rt.call("aten::embedding_bag", weight, cold, offsets, False, 0, False)
        hot_kernel, cold_kernel = rt.gpu.launches
        assert hot_kernel.desc.locality > cold_kernel.desc.locality
        assert hot_kernel.duration <= cold_kernel.duration

    def test_missing_indices_payload_uses_default_locality(self, rt):
        weight = Tensor.empty((100_000, 64))
        offsets = Tensor.empty((64,), dtype=DType.INT64)
        indices = Tensor.empty((4096,), dtype=DType.INT64)  # no payload
        rt.call("aten::embedding_bag", weight, indices, offsets, False, 0, False)
        assert rt.gpu.launches[0].desc.locality == pytest.approx(0.35)
