"""Tests for the batch orchestration subsystem (repro.service).

Covers repository discovery/validation on a temp directory of traces,
result-cache hit/miss behaviour, parallel-vs-sequential batch equivalence,
sweep expansion, and the config/trace digesting the cache keys on.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.aggregate import aggregate_by_device, cache_summary_line, format_batch_report
from repro.bench.harness import capture_workload
from repro.core.replayer import ReplayConfig, ReplayResultSummary
from repro.core.tensors import EmbeddingValueConfig
from repro.hardware.network import InterconnectSpec
from repro.service import (
    BatchReplayer,
    ReplayJob,
    ResultCache,
    SweepRunner,
    SweepSpec,
    TraceRepository,
    TraceValidationError,
)
from repro.service.cache import cache_key
from repro.service.repository import validate_trace_dict
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload


# ----------------------------------------------------------------------
# Fixtures: a repository of three small captured traces
# ----------------------------------------------------------------------
def _small_linear(layers: int) -> ParamLinearWorkload:
    return ParamLinearWorkload(
        ParamLinearConfig(batch_size=16, num_layers=layers, hidden_size=64, input_size=64)
    )


@pytest.fixture(scope="module")
def trace_repo_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("traces")
    repo = TraceRepository(root)
    for layers in (2, 3, 4):
        capture = capture_workload(_small_linear(layers), warmup_iterations=0)
        repo.add(f"linear_{layers}", capture.execution_trace)
    return root


@pytest.fixture
def repo(trace_repo_dir) -> TraceRepository:
    return TraceRepository(trace_repo_dir)


# ----------------------------------------------------------------------
# ReplayConfig serialisation / identity
# ----------------------------------------------------------------------
class TestReplayConfigIdentity:
    def test_round_trip(self):
        config = ReplayConfig(
            device="V100",
            iterations=3,
            categories=("compute", "comms"),
            power_limit_w=250.0,
            interconnect=InterconnectSpec(inter_node_bw_gbps=50.0),
            embedding_config=EmbeddingValueConfig(table_size=1234),
        )
        rebuilt = ReplayConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config
        assert rebuilt.digest() == config.digest()

    def test_none_embedding_round_trips(self):
        config = ReplayConfig(embedding_config=None, interconnect=None)
        rebuilt = ReplayConfig.from_dict(config.to_dict())
        assert rebuilt.embedding_config is None
        assert rebuilt == config

    def test_digest_distinguishes_configs(self):
        assert ReplayConfig(device="A100").digest() != ReplayConfig(device="V100").digest()
        assert ReplayConfig(iterations=1).digest() != ReplayConfig(iterations=2).digest()

    def test_hashable(self):
        configs = {ReplayConfig(device="A100"), ReplayConfig(device="A100")}
        assert len(configs) == 1

    def test_from_dict_ignores_unknown_keys(self):
        data = ReplayConfig().to_dict()
        data["future_knob"] = 42
        assert ReplayConfig.from_dict(data) == ReplayConfig()

    def test_from_dict_partial_keeps_defaults(self):
        # Absent keys must keep dataclass defaults — in particular the
        # embedding-value default must not silently collapse to None.
        config = ReplayConfig.from_dict({"device": "V100"})
        assert config.embedding_config == EmbeddingValueConfig()
        assert config == ReplayConfig(device="V100")
        assert config.digest() == ReplayConfig(device="V100").digest()


class TestTraceDigest:
    def test_digest_independent_of_formatting(self, repo, tmp_path):
        record = repo.discover()[0]
        trace = repo.load(record)
        pretty = tmp_path / "pretty.json"
        pretty.write_text(trace.to_json(indent=2))
        from repro.et.trace import ExecutionTrace

        assert ExecutionTrace.load(pretty).digest() == record.digest

    def test_digest_changes_with_metadata(self, repo):
        trace = repo.load(repo.discover()[0])
        before = trace.digest()
        trace.metadata["note"] = "changed"
        assert trace.digest() != before


# ----------------------------------------------------------------------
# Repository
# ----------------------------------------------------------------------
class TestTraceRepository:
    def test_discovery_finds_all_traces(self, repo):
        assert repo.names() == ["linear_2", "linear_3", "linear_4"]
        for record in repo:
            assert record.num_nodes > 0
            assert record.num_operators > 0
            assert record.workload == "param_linear"
            assert len(record.digest) == 64

    def test_non_trace_json_is_skipped(self, trace_repo_dir):
        junk = trace_repo_dir / "not_a_trace.json"
        junk.write_text(json.dumps({"kernels": [1, 2, 3]}))
        try:
            repo = TraceRepository(trace_repo_dir)
            assert "not_a_trace" not in repo.names()
            assert junk in repo.invalid
        finally:
            junk.unlink()

    def test_corrupt_json_is_skipped(self, trace_repo_dir):
        junk = trace_repo_dir / "corrupt.json"
        junk.write_text("{ this is not json")
        try:
            repo = TraceRepository(trace_repo_dir)
            assert repo.names() == ["linear_2", "linear_3", "linear_4"]
            assert "unreadable JSON" in repo.invalid[junk]
        finally:
            junk.unlink()

    def test_get_unknown_name_raises(self, repo):
        with pytest.raises(KeyError, match="no trace named"):
            repo.get("missing")

    def test_load_round_trips(self, repo):
        record = repo.get("linear_2")
        trace = repo.load("linear_2")
        assert trace.digest() == record.digest
        assert len(trace) == record.num_nodes

    def test_validate_trace_dict_rejects_bad_shapes(self):
        with pytest.raises(TraceValidationError):
            validate_trace_dict([1, 2])
        with pytest.raises(TraceValidationError):
            validate_trace_dict({"nodes": []})
        with pytest.raises(TraceValidationError):
            validate_trace_dict({"nodes": [{"name": "x"}]})


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("abc", ReplayConfig())
        assert cache.get(key) is None
        assert cache.misses == 1
        summary = ReplayResultSummary(iteration_times_us=[42.0], replayed_ops=7)
        cache.put(key, summary, trace_digest="abc", config=ReplayConfig())
        loaded = cache.get(key)
        assert cache.hits == 1
        assert loaded is not None
        assert loaded.mean_iteration_time_us == 42.0
        assert loaded.replayed_ops == 7

    def test_key_depends_on_trace_and_config(self):
        assert cache_key("a", ReplayConfig()) != cache_key("b", ReplayConfig())
        assert cache_key("a", ReplayConfig()) != cache_key("a", ReplayConfig(device="V100"))
        assert cache_key("a", ReplayConfig()) == cache_key("a", ReplayConfig())

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("abc", ReplayConfig())
        cache.root.mkdir(parents=True)
        (cache.root / f"{key}.json").write_text("not json")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k1", ReplayResultSummary())
        cache.put("k2", ReplayResultSummary())
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Batch replayer
# ----------------------------------------------------------------------
def _jobs_for(repo: TraceRepository, devices=("A100",)) -> list:
    return [
        ReplayJob.from_record(record, ReplayConfig(device=device))
        for record in repo.discover()
        for device in devices
    ]


class TestBatchReplayer:
    def test_two_worker_batch_equals_sequential(self, repo):
        jobs = _jobs_for(repo, devices=("A100", "V100"))
        parallel = BatchReplayer(max_workers=2, backend="thread").run(jobs)
        sequential = BatchReplayer(backend="serial").run(jobs)
        self._assert_batches_equal(parallel, sequential)

    def test_process_pool_equals_sequential(self, repo):
        jobs = _jobs_for(repo)[:2]
        parallel = BatchReplayer(max_workers=2, backend="process").run(jobs)
        sequential = BatchReplayer(backend="serial").run(jobs)
        self._assert_batches_equal(parallel, sequential)

    @staticmethod
    def _assert_batches_equal(parallel, sequential):
        assert parallel.error_count == 0 and sequential.error_count == 0
        for par, seq in zip(parallel, sequential):
            assert par.job.label == seq.job.label
            assert par.summary.mean_iteration_time_us == seq.summary.mean_iteration_time_us
            assert par.summary.replayed_ops == seq.summary.replayed_ops
            assert par.summary.sm_utilization_pct == seq.summary.sm_utilization_pct

    def test_failed_job_does_not_abort_batch(self, repo, tmp_path):
        bad = tmp_path / "missing.json"
        jobs = _jobs_for(repo)
        jobs.append(
            ReplayJob(label="bad", trace_path=bad, trace_digest="0" * 64, config=ReplayConfig())
        )
        batch = BatchReplayer(max_workers=2).run(jobs)
        assert batch.error_count == 1
        assert batch.replayed_count == len(jobs) - 1
        assert "bad" in batch.errors()

    def test_cache_round_trip_through_batch(self, repo, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs_for(repo)
        first = BatchReplayer(cache=cache, max_workers=2).run(jobs)
        assert first.replayed_count == len(jobs) and first.cached_count == 0
        second = BatchReplayer(cache=cache, max_workers=2).run(jobs)
        assert second.cached_count == len(jobs) and second.replayed_count == 0
        for a, b in zip(first, second):
            assert a.summary.mean_iteration_time_us == b.summary.mean_iteration_time_us

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            BatchReplayer(backend="gpu")

    def test_modified_trace_fails_instead_of_poisoning_cache(self, repo, tmp_path):
        # Replaying a trace whose file changed after discovery must fail the
        # job (digest mismatch), not cache new content under the old digest.
        record = repo.discover()[0]
        trace = repo.load(record)
        copy_path = tmp_path / "copy.json"
        trace.save(copy_path)
        job = ReplayJob(
            label="stale",
            trace_path=copy_path,
            trace_digest=record.digest,
            config=ReplayConfig(),
        )
        trace.metadata["modified"] = True
        trace.save(copy_path)
        cache = ResultCache(tmp_path / "cache")
        batch = BatchReplayer(cache=cache, backend="thread").run([job])
        assert batch.error_count == 1
        assert "digest mismatch" in batch.results[0].error
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
class TestSweep:
    def test_expansion_is_cross_product(self):
        spec = SweepSpec(
            devices=("A100", "V100"),
            axes={"power_limit_w": [None, 250.0], "comm_delay_scale": [1.0, 2.0]},
        )
        points = spec.expand()
        assert len(points) == 2 * 2 * 2
        labels = [label for label, _ in points]
        assert len(set(labels)) == len(labels)
        assert any("power_limit_w=250.0" in label for label in labels)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown ReplayConfig fields"):
            SweepSpec(axes={"not_a_knob": [1]}).expand()

    def test_sweep_runs_all_grid_points(self, repo, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(repo, BatchReplayer(cache=cache, max_workers=2))
        result = runner.run(SweepSpec(devices=("A100", "NewPlatform")))
        assert result.total_jobs == 3 * 2
        assert result.batch.error_count == 0
        devices = aggregate_by_device(result.batch)
        assert set(devices) == {"A100", "NewPlatform"}

    def test_second_sweep_does_not_re_replay(self, repo, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        spec = SweepSpec(devices=("A100", "V100"))
        first = SweepRunner(repo, BatchReplayer(cache=cache, max_workers=2)).run(spec)
        assert first.batch.replayed_count == 6

        # Any attempt to replay on the second sweep is a test failure: the
        # whole sweep must be served from the cache.
        import repro.service.batch as batch_module

        def _no_replay(*args, **kwargs):
            raise AssertionError("replay executed despite warm cache")

        monkeypatch.setattr(batch_module, "_execute_job", _no_replay)
        monkeypatch.setattr(batch_module, "_replay_trace", _no_replay)
        second = SweepRunner(repo, BatchReplayer(cache=cache, max_workers=2)).run(spec)
        assert second.batch.cached_count == 6
        assert second.batch.replayed_count == 0
        assert second.batch.error_count == 0

    def test_empty_repository_raises(self, tmp_path):
        runner = SweepRunner(TraceRepository(tmp_path / "empty"))
        with pytest.raises(ValueError, match="no traces to sweep"):
            runner.run(SweepSpec())


# ----------------------------------------------------------------------
# Aggregate reporting
# ----------------------------------------------------------------------
class TestAggregateReporting:
    def test_batch_report_lists_every_job(self, repo):
        batch = BatchReplayer(backend="serial").run(_jobs_for(repo))
        report = format_batch_report(batch)
        for record in repo:
            assert f"{record.name}@A100" in report
        assert "replayed" in report

    def test_cache_summary_line(self, repo, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs_for(repo)
        BatchReplayer(cache=cache).run(jobs)
        batch = BatchReplayer(cache=cache).run(jobs)
        assert cache_summary_line(batch) == "3 jobs: 0 replayed, 3 from cache, 0 failed"
