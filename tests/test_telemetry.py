"""Tests for repro.telemetry — tracing, metrics, and timeline export.

Covers the subsystem bottom-up — tracer/span/correlation mechanics, the
metrics registry and its Prometheus exposition, the pipeline TelemetryHook
— and the ISSUE's acceptance scenarios:

* a 4-rank DDP-RM cluster replay exports valid Chrome-trace JSON: loads
  under ``json.loads``, every lane's ``ts`` values are monotonic, and the
  rank lanes carry compute / comms / stall slices from the virtual clock;
* ``python -m repro replay-dist --trace-out`` writes that file;
* the daemon serves Prometheus-parseable ``GET /metrics`` while a job is
  running, and ``/health`` carries the telemetry counter totals;
* the bare-print lint rule catches offenders and the tree is clean.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

import repro.api as api
from repro.telemetry import (
    METRICS_SCHEMA_VERSION,
    TELEMETRY_SCHEMA_VERSION,
    MetricsRegistry,
    Span,
    TelemetryHook,
    Tracer,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.workloads.ddp import DistributedRunner
from tests.conftest import make_small_rm

WAIT_S = 120.0


# ----------------------------------------------------------------------
# Tracer / Span
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_wall_interval(self):
        ticks = iter(float(n) for n in range(10))
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("stage:execute", "pipeline") as span:
            pass
        assert span.wall_duration_s == 1.0
        assert tracer.spans == (span,)

    def test_begin_end_carries_virtual_times(self):
        tracer = Tracer()
        span = tracer.begin("scheduler:run", "scheduler", virtual_start_us=10.0)
        tracer.end(span, virtual_end_us=250.0)
        assert span.virtual_duration_us == 240.0

    def test_correlation_scopes_nest_and_pop(self):
        tracer = Tracer()
        with tracer.scope(job_id="j1"):
            with tracer.scope(sweep_point="rm@A100"):
                span = tracer.begin("point", "daemon")
                tracer.end(span)
            outer = tracer.begin("outer", "daemon")
            tracer.end(outer)
        assert span.correlation == {"job_id": "j1", "sweep_point": "rm@A100"}
        assert outer.correlation == {"job_id": "j1"}
        assert tracer.current_correlation() == {}

    def test_correlation_is_per_thread(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.scope(job_id="other"):
                seen["other"] = tracer.current_correlation()

        with tracer.scope(job_id="mine"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            seen["mine"] = tracer.current_correlation()
        assert seen["mine"] == {"job_id": "mine"}
        assert seen["other"] == {"job_id": "other"}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("x", "pipeline") is None
        tracer.end(None)
        with tracer.span("y", "pipeline") as span:
            assert span is None
        tracer.slice(0, "k", "compute", 0.0, 5.0)
        tracer.event("park", "scheduler")
        with tracer.scope(job_id="still-usable"):
            assert tracer.current_correlation() == {"job_id": "still-usable"}
        assert tracer.spans == () and tracer.events == ()

    def test_span_context_records_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("stage:execute", "pipeline"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert "ValueError" in span.attributes["error"]

    def test_max_records_drops_and_counts(self):
        tracer = Tracer(max_records=2)
        for n in range(4):
            tracer.slice(0, f"k{n}", "compute", float(n), 1.0)
        assert len(tracer.spans) == 2
        assert tracer.dropped == 2
        assert tracer.to_dict()["dropped"] == 2

    def test_to_dict_is_versioned_json(self):
        tracer = Tracer()
        tracer.slice(1, "k", "compute", 0.0, 3.0)
        tracer.event("wake", "scheduler", correlation={"rank": 1})
        payload = json.loads(json.dumps(tracer.to_dict()))
        assert payload["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert payload["span_count"] == 1 and payload["event_count"] == 1


# ----------------------------------------------------------------------
# Metrics registry + Prometheus exposition
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3.0
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        with pytest.raises(TypeError):
            registry.gauge("c")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"0.1": 1, "1.0": 2, "10.0": 3}
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(55.55)

    def test_prometheus_rendering_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "All jobs.").inc(2)
        registry.gauge("repro_depth").set(1.5)
        registry.histogram("repro_wait", buckets=(1.0,)).observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP repro_jobs_total All jobs." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 2" in text
        assert "repro_depth 1.5" in text
        assert 'repro_wait_bucket{le="1"} 1' in text
        assert 'repro_wait_bucket{le="+Inf"} 1' in text
        assert "repro_wait_count 1" in text
        assert text.endswith("\n")

    def test_snapshot_versioned(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        assert snapshot["schema_version"] == METRICS_SCHEMA_VERSION
        assert registry.counter_totals() == {"c": 1.0}


class TestPrometheusExpositionEdgeCases:
    """Exposition-format corners a real scrape would trip on."""

    def test_empty_registry_renders_empty_string(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_rendered_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0, 50.0):
            histogram.observe(value)
        samples = _parse_prometheus(registry.render_prometheus())
        buckets = [
            samples['repro_lat_bucket{le="0.1"}'],
            samples['repro_lat_bucket{le="1"}'],
            samples['repro_lat_bucket{le="10"}'],
            samples['repro_lat_bucket{le="+Inf"}'],
        ]
        assert buckets == sorted(buckets), "bucket counts must not decrease"
        assert buckets == [1.0, 2.0, 3.0, 5.0]
        assert samples['repro_lat_bucket{le="+Inf"}'] == samples["repro_lat_count"]
        assert samples["repro_lat_sum"] == pytest.approx(105.55)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_weird",
            "Weird labels.",
            labels={"path": 'C:\\tmp', "note": 'say "hi"\nbye'},
        ).inc(3)
        text = registry.render_prometheus()
        line = next(
            l for l in text.splitlines() if l.startswith("repro_weird{")
        )
        assert '\\\\' in line  # backslash escaped
        assert '\\"' in line  # quote escaped
        assert "\\n" in line and "\n" not in line  # newline stays one line
        samples = _parse_prometheus(text)
        key = 'repro_weird{path="C:\\\\tmp",note="say \\"hi\\"\\nbye"}'
        assert samples[key] == 3.0

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("repro_g", "line one\nline \\two").set(1.0)
        text = registry.render_prometheus()
        assert "# HELP repro_g line one\\nline \\\\two" in text
        assert len(text.strip().splitlines()) == 3  # HELP, TYPE, sample
        assert _parse_prometheus(text)["repro_g"] == 1.0

    def test_constant_labels_compose_with_le(self):
        registry = MetricsRegistry()
        registry.histogram(
            "repro_h", buckets=(1.0,), labels={"queue": "main"}
        ).observe(0.5)
        samples = _parse_prometheus(registry.render_prometheus())
        assert samples['repro_h_bucket{queue="main",le="1"}'] == 1.0
        assert samples['repro_h_bucket{queue="main",le="+Inf"}'] == 1.0
        assert samples['repro_h_sum{queue="main"}'] == 0.5
        assert samples['repro_h_count{queue="main"}'] == 1.0

    def test_every_line_is_parseable(self):
        registry = MetricsRegistry()
        registry.counter("repro_a", "A.", labels={"k": "v"}).inc()
        registry.gauge("repro_b").set(-2.5)
        registry.histogram("repro_c", buckets=(0.5,)).observe(1.0)
        text = registry.render_prometheus()
        assert text.endswith("\n")
        _parse_prometheus(text)  # raises on any malformed line


# ----------------------------------------------------------------------
# Pipeline instrumentation (single-rank session)
# ----------------------------------------------------------------------
class TestSessionTelemetry:
    def test_replay_session_records_stage_spans_and_gantt(self):
        capture = api.capture(make_small_rm(), warmup_iterations=0)
        tracer = Tracer()
        session = api.replay(capture).iterations(2).with_telemetry(tracer)
        result = session.run()
        assert result.replayed_ops > 0

        stage_spans = [s for s in tracer.iter_spans("pipeline")]
        stage_names = {s.name for s in stage_spans}
        assert "stage:execute" in stage_names
        # Stage spans carry both clocks: wall interval plus virtual window.
        execute = next(s for s in stage_spans if s.name == "stage:execute")
        assert execute.wall_duration_s > 0.0
        assert execute.virtual_start_us is not None

        compute = [s for s in tracer.iter_spans("compute")]
        assert compute, "kernel Gantt slices missing"
        assert all(s.virtual_duration_us >= 0.0 for s in compute)

    def test_profile_hook_publishes_spans_to_shared_tracer(self):
        capture = api.capture(make_small_rm(), warmup_iterations=0)
        tracer = Tracer()
        session = (
            api.replay(capture).iterations(1).with_telemetry(tracer).with_profiling()
        )
        session.run()
        assert any(s.category == "profiling" for s in tracer.spans)

    def test_export_trace_without_telemetry_raises(self, tmp_path):
        capture = api.capture(make_small_rm(), warmup_iterations=0)
        with pytest.raises(RuntimeError):
            api.replay(capture).export_trace(tmp_path / "out.json")


# ----------------------------------------------------------------------
# Acceptance: 4-rank cluster replay -> valid Chrome trace
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def rm_fleet():
    runner = DistributedRunner(
        lambda rank, world: make_small_rm(rank=rank, world_size=world), world_size=4
    )
    return runner.run()


class TestClusterChromeTrace:
    @pytest.fixture(scope="class")
    def trace_payload(self, rm_fleet, tmp_path_factory):
        path = tmp_path_factory.mktemp("telemetry") / "cluster_trace.json"
        session = (
            api.replay_cluster(rm_fleet)
            .on("A100")
            .iterations(2)
            .configure_rank(0, device="V100")  # straggler -> stalls on 1..3
            .with_telemetry()
        )
        report = session.run()
        assert report.critical_path_us > 0.0
        written = session.export_trace(path)
        return json.loads(written.read_text())

    def test_loads_as_json_with_trace_shape(self, trace_payload):
        assert isinstance(trace_payload["traceEvents"], list)
        assert trace_payload["displayTimeUnit"] == "ms"
        assert trace_payload["metadata"]["exporter"] == "repro.telemetry"

    def test_every_lane_is_ts_monotonic(self, trace_payload):
        lanes = {}
        for event in trace_payload["traceEvents"]:
            if event.get("ph") == "M":
                continue
            lanes.setdefault((event["pid"], event["tid"]), []).append(event["ts"])
        assert lanes
        for lane, ts_values in lanes.items():
            assert ts_values == sorted(ts_values), f"lane {lane} not monotonic"

    def test_rank_lanes_carry_compute_comms_stall(self, trace_payload):
        slices = [
            event
            for event in trace_payload["traceEvents"]
            if event.get("ph") == "X" and event["pid"] == 1
        ]
        categories = {event["cat"] for event in slices}
        assert {"compute", "comms", "stall"} <= categories
        ranks = {
            event["args"]["correlation"]["rank"]
            for event in slices
            if "correlation" in event.get("args", {})
        }
        assert ranks == {0, 1, 2, 3}
        # The V100 straggler stalls the other ranks, never itself.
        stall_ranks = {
            event["args"]["correlation"]["rank"]
            for event in slices
            if event["cat"] == "stall"
        }
        assert stall_ranks and 0 not in stall_ranks

    def test_scheduler_events_present(self, trace_payload):
        names = {
            event["name"]
            for event in trace_payload["traceEvents"]
            if event.get("cat") == "scheduler"
        }
        assert "scheduler:run" in names

    def test_cli_trace_out_writes_chrome_trace(self, rm_fleet, tmp_path):
        fleet_dir = tmp_path / "fleet"
        DistributedRunner.save_captures(rm_fleet, fleet_dir)
        out = tmp_path / "timeline.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "replay-dist", str(fleet_dir),
                "--device", "A100", "-n", "1", "--trace-out", str(out), "--json",
            ],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent.parent,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(out.read_text())
        assert any(
            event.get("cat") == "compute" for event in payload["traceEvents"]
        )
        # --json output on stdout stays parseable despite the trace export.
        assert json.loads(proc.stdout)["world_size"] == 4


# ----------------------------------------------------------------------
# Daemon: GET /metrics while a job runs, /health telemetry totals
# ----------------------------------------------------------------------
class TestDaemonMetrics:
    def test_metrics_during_running_job(self, tmp_path):
        from repro.bench.harness import capture_workload
        from repro.daemon import JobSpec, ReplayDaemon
        from repro.daemon.executor import expand_sweep_points
        from repro.daemon.server import DaemonServer
        from repro.service import TraceRepository
        from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload

        repo_dir = tmp_path / "traces"
        repo = TraceRepository(repo_dir)
        workload = ParamLinearWorkload(
            ParamLinearConfig(batch_size=8, num_layers=2, hidden_size=32, input_size=32)
        )
        repo.add(workload.name, capture_workload(workload, warmup_iterations=0).execution_trace)
        payload = {
            "repo": str(repo_dir), "traces": None, "devices": ["A100"],
            "axes": {}, "base": {"iterations": 1},
        }
        (point,) = expand_sweep_points(payload)

        daemon = ReplayDaemon(tmp_path / "state", workers=1)
        with DaemonServer(daemon, port=0) as server:
            # Pre-claim the job's only point so it blocks inside "running"
            # deterministically while we scrape.
            event, mine = daemon.inflight.claim(point.cache_key)
            assert mine
            try:
                record = daemon.submit("alice", JobSpec(kind="sweep", payload=payload))
                deadline = time.time() + WAIT_S
                while daemon.get(record.id, "alice").state != "running":
                    assert time.time() < deadline, "job never started"
                    time.sleep(0.01)

                response = urllib.request.urlopen(server.url + "/metrics")
                assert response.headers["Content-Type"].startswith("text/plain")
                assert "version=0.0.4" in response.headers["Content-Type"]
                text = response.read().decode("utf-8")
                assert _parse_prometheus(text)["repro_jobs_running"] == 1.0
                assert _parse_prometheus(text)["repro_jobs_submitted_total"] == 1.0

                health = json.loads(
                    urllib.request.urlopen(server.url + "/health").read()
                )
                assert health["jobs_by_state"]["running"] == 1
                assert health["telemetry"]["repro_jobs_submitted_total"] == 1.0
                assert health["uptime_s"] > 0.0
            finally:
                daemon.inflight.release(point.cache_key)

            deadline = time.time() + WAIT_S
            while daemon.get(record.id, "alice").state != "completed":
                assert time.time() < deadline, daemon.get(record.id, "alice").state
                time.sleep(0.01)

            done = _parse_prometheus(
                urllib.request.urlopen(server.url + "/metrics").read().decode()
            )
            assert done["repro_jobs_running"] == 0.0
            assert done["repro_jobs_completed_total"] == 1.0
            assert done["repro_job_duration_seconds_count"] == 1.0
            # The executor traced the job + its point under correlation.
            job_spans = [s for s in daemon.tracer.spans if s.category == "daemon"]
            assert {s.name for s in job_spans} == {
                "job:sweep", f"point:{point.label}"
            }
            point_span = next(s for s in job_spans if s.name.startswith("point:"))
            assert point_span.correlation["job_id"] == record.id


def _parse_prometheus(text: str) -> dict:
    """Minimal exposition-format parser: sample name+labels -> value.

    Raises on any non-comment line that does not match the format — the
    'Prometheus-parseable' acceptance check.
    """
    samples = {}
    pattern = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+Inf-]+)$'
    )
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        match = pattern.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        name, labels, value = match.groups()
        samples[name + (labels or "")] = float(value)
    return samples


# ----------------------------------------------------------------------
# Satellite: the bare-print lint rule
# ----------------------------------------------------------------------
class TestBarePrintRule:
    def _run(self, root: Path) -> dict:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
        try:
            from check_deprecated_usage import find_offenders
        finally:
            sys.path.pop(0)
        return find_offenders(root)

    def _tree(self, tmp_path: Path, relative: str, text: str) -> Path:
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def test_flags_bare_print(self, tmp_path):
        self._tree(tmp_path, "src/repro/core/thing.py", 'print("hello")\n')
        offenders = self._run(tmp_path)
        assert len(offenders["bare-print"]) == 1

    def test_explicit_stream_and_exempt_files_pass(self, tmp_path):
        self._tree(
            tmp_path, "src/repro/api/hooks.py",
            "print('x', file=self.stream)\nconsole.print('y')\n",
        )
        self._tree(tmp_path, "src/repro/service/cli.py", 'print("cli output")\n')
        self._tree(tmp_path, "src/repro/daemon/server.py", 'print("server log")\n')
        offenders = self._run(tmp_path)
        assert "bare-print" not in offenders

    def test_repository_is_clean(self):
        offenders = self._run(Path(__file__).resolve().parent.parent)
        assert "bare-print" not in offenders, offenders.get("bare-print")
