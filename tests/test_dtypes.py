"""Unit tests for repro.torchsim.dtypes."""

import pytest

from repro.torchsim.dtypes import DType, DEFAULT_DTYPE


class TestDTypeBasics:
    def test_float32_itemsize(self):
        assert DType.FLOAT32.itemsize == 4

    def test_float16_itemsize(self):
        assert DType.FLOAT16.itemsize == 2

    def test_int64_itemsize(self):
        assert DType.INT64.itemsize == 8

    def test_bool_itemsize(self):
        assert DType.BOOL.itemsize == 1

    def test_default_dtype_is_float32(self):
        assert DEFAULT_DTYPE is DType.FLOAT32

    def test_floating_flags(self):
        assert DType.FLOAT32.is_floating
        assert DType.BFLOAT16.is_floating
        assert not DType.INT64.is_floating
        assert not DType.BOOL.is_floating

    def test_str_returns_type_name(self):
        assert str(DType.FLOAT32) == "float32"
        assert str(DType.INT8) == "int8"


class TestDTypeFromName:
    def test_round_trip_all_dtypes(self):
        for dtype in DType:
            assert DType.from_name(dtype.type_name) is dtype

    def test_parses_tensor_wrapped_name(self):
        assert DType.from_name("Tensor(float32)") is DType.FLOAT32
        assert DType.from_name("Tensor(int64)") is DType.INT64

    def test_strips_whitespace(self):
        assert DType.from_name("  float16 ") is DType.FLOAT16

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            DType.from_name("complex128")
