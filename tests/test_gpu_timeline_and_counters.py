"""Tests for the GPU timeline simulator and the derived counters."""

import pytest

from repro.hardware.counters import (
    aggregate_kernel_counters,
    compute_kernel_counters,
    compute_system_metrics,
)
from repro.hardware.gpu import GpuTimeline
from repro.hardware.specs import A100
from repro.torchsim.kernel import KernelDesc, KernelKind, KernelLaunch, OpCategory


def launch(stream=7, ts=0.0, dur=10.0, category=OpCategory.ATEN, occupancy=0.8,
           bytes_total=1e6, kind=KernelKind.GEMM, flops=1e8, locality=0.7, name="k"):
    desc = KernelDesc(
        name=name, kind=kind, flops=flops,
        bytes_read=bytes_total / 2, bytes_written=bytes_total / 2,
        occupancy=occupancy, locality=locality,
    )
    return KernelLaunch(
        desc=desc, stream_id=stream, launch_ts=ts, duration=dur,
        op_node_id=0, op_name="op", category=category,
    )


class TestTimelineResolution:
    def test_same_stream_serializes(self):
        timeline = GpuTimeline()
        first = timeline.add_launch(launch(ts=0.0, dur=10.0))
        second = timeline.add_launch(launch(ts=2.0, dur=10.0))
        assert first.start == 0.0 and first.end == 10.0
        assert second.start == 10.0 and second.end == 20.0

    def test_kernel_waits_for_launch_timestamp(self):
        timeline = GpuTimeline()
        resolved = timeline.add_launch(launch(ts=50.0, dur=5.0))
        assert resolved.start == 50.0

    def test_different_streams_overlap(self):
        timeline = GpuTimeline()
        first = timeline.add_launch(launch(stream=7, ts=0.0, dur=10.0))
        second = timeline.add_launch(launch(stream=20, ts=0.0, dur=10.0))
        assert second.start == 0.0
        assert first.end == second.end == 10.0

    def test_device_ready_time_is_max_over_streams(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(stream=7, ts=0.0, dur=10.0))
        timeline.add_launch(launch(stream=20, ts=0.0, dur=30.0))
        assert timeline.device_ready_time() == 30.0
        assert timeline.stream_ready_time(7) == 10.0

    def test_empty_timeline(self):
        timeline = GpuTimeline()
        assert timeline.device_ready_time() == 0.0
        assert timeline.stats().kernel_count == 0


class TestTimelineStats:
    def test_busy_time_merges_overlaps(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(stream=7, ts=0.0, dur=10.0))
        timeline.add_launch(launch(stream=20, ts=5.0, dur=10.0))
        stats = timeline.stats()
        assert stats.busy_time_us == pytest.approx(15.0)
        assert stats.total_kernel_time_us == pytest.approx(20.0)

    def test_exposed_time_per_category(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(stream=7, ts=0.0, dur=10.0, category=OpCategory.ATEN))
        # The collective overlaps the compute kernel for half its duration.
        timeline.add_launch(launch(stream=20, ts=5.0, dur=10.0, category=OpCategory.COMM,
                                   kind=KernelKind.COLLECTIVE))
        stats = timeline.stats()
        assert stats.category_exposed_time_us["comms"] == pytest.approx(5.0)
        assert stats.category_exposed_time_us["aten"] == pytest.approx(5.0)

    def test_fully_hidden_category_has_zero_exposed_time(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(stream=7, ts=0.0, dur=20.0, category=OpCategory.ATEN))
        timeline.add_launch(launch(stream=20, ts=5.0, dur=5.0, category=OpCategory.COMM))
        stats = timeline.stats()
        assert stats.category_exposed_time_us["comms"] == pytest.approx(0.0)

    def test_sm_utilization_weighted_by_occupancy(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(ts=0.0, dur=10.0, occupancy=0.5))
        stats = timeline.stats(window_start=0.0, window_end=10.0)
        assert stats.sm_utilization == pytest.approx(0.5)

    def test_idle_gaps_lower_utilization(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(ts=0.0, dur=10.0, occupancy=1.0))
        stats = timeline.stats(window_start=0.0, window_end=20.0)
        assert stats.sm_utilization == pytest.approx(0.5)
        assert stats.busy_fraction == pytest.approx(0.5)

    def test_hbm_bandwidth_from_bytes(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(ts=0.0, dur=10.0, bytes_total=1e6))
        stats = timeline.stats(window_start=0.0, window_end=10.0)
        # 1 MB over 10 us = 100 GB/s
        assert stats.hbm_bandwidth_gbps == pytest.approx(100.0)

    def test_window_filters_out_earlier_kernels(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(ts=0.0, dur=10.0))
        timeline.add_launch(launch(ts=100.0, dur=10.0))
        stats = timeline.stats(window_start=50.0)
        assert stats.kernel_count == 1

    def test_category_counts(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(category=OpCategory.ATEN))
        timeline.add_launch(launch(ts=20.0, category=OpCategory.CUSTOM))
        stats = timeline.stats()
        assert stats.category_count["aten"] == 1
        assert stats.category_count["custom"] == 1


class TestCounters:
    def test_compute_bound_kernel_has_higher_ipc(self):
        compute_heavy = KernelDesc(name="a", kind=KernelKind.GEMM, flops=1e12, bytes_read=1e6, bytes_written=1e6)
        memory_heavy = KernelDesc(name="b", kind=KernelKind.GEMM, flops=1e6, bytes_read=1e9, bytes_written=1e9)
        assert compute_kernel_counters(compute_heavy, A100).ipc > compute_kernel_counters(memory_heavy, A100).ipc

    def test_locality_drives_hit_rates(self):
        local = KernelDesc(name="a", kind=KernelKind.ELEMENTWISE, locality=0.9, bytes_read=1e6)
        remote = KernelDesc(name="b", kind=KernelKind.EMBEDDING, locality=0.1, bytes_read=1e6)
        local_counters = compute_kernel_counters(local, A100)
        remote_counters = compute_kernel_counters(remote, A100)
        assert local_counters.l1_hit_rate > remote_counters.l1_hit_rate
        assert local_counters.l2_hit_rate > remote_counters.l2_hit_rate

    def test_l2_hit_rate_not_below_l1(self):
        desc = KernelDesc(name="a", kind=KernelKind.GEMM, locality=0.5, bytes_read=1e6)
        counters = compute_kernel_counters(desc, A100)
        assert counters.l2_hit_rate >= counters.l1_hit_rate

    def test_hit_rates_bounded(self):
        for locality in (0.0, 0.5, 1.0):
            desc = KernelDesc(name="a", kind=KernelKind.GEMM, locality=locality, bytes_read=1e6)
            counters = compute_kernel_counters(desc, A100)
            assert 0.0 <= counters.l1_hit_rate <= 1.0
            assert 0.0 <= counters.l2_hit_rate <= 1.0
            assert 0.0 <= counters.sm_throughput <= 1.0

    def test_aggregate_weights_by_duration(self):
        fast = compute_kernel_counters(KernelDesc(name="a", kind=KernelKind.GEMM, flops=1e12, bytes_read=1e6), A100, duration_us=1.0)
        slow = compute_kernel_counters(KernelDesc(name="b", kind=KernelKind.EMBEDDING, flops=1e6, bytes_read=1e9), A100, duration_us=99.0)
        overall = aggregate_kernel_counters([fast, slow])
        assert abs(overall.ipc - slow.ipc) < abs(overall.ipc - fast.ipc)

    def test_aggregate_empty_returns_none(self):
        assert aggregate_kernel_counters([]) is None

    def test_system_metrics_fields(self):
        timeline = GpuTimeline()
        timeline.add_launch(launch(ts=0.0, dur=100.0, occupancy=0.9, bytes_total=1e8))
        metrics = compute_system_metrics(timeline.stats(), A100)
        assert metrics.execution_time_ms > 0
        assert 0 < metrics.sm_utilization_pct <= 100
        assert metrics.hbm_bandwidth_gbps > 0
        assert A100.idle_power_w <= metrics.gpu_power_w <= A100.tdp_w
        assert set(metrics.as_dict()) == {
            "execution_time_ms", "sm_utilization_pct", "hbm_bandwidth_gbps", "gpu_power_w",
        }
