"""Unit tests for repro.torchsim.device."""

import pytest

from repro.torchsim.device import Device


class TestDeviceConstruction:
    def test_cpu_factory(self):
        device = Device.cpu()
        assert device.type == "cpu"
        assert device.index == 0
        assert not device.is_cuda

    def test_cuda_factory_default_index(self):
        device = Device.cuda()
        assert device.type == "cuda"
        assert device.index == 0
        assert device.is_cuda

    def test_cuda_factory_explicit_index(self):
        assert Device.cuda(3).index == 3

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            Device("tpu", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Device("cuda", -1)


class TestDeviceParsing:
    def test_parse_cpu(self):
        assert Device.parse("cpu") == Device.cpu()

    def test_parse_cuda_with_index(self):
        assert Device.parse("cuda:2") == Device.cuda(2)

    def test_parse_round_trips_str(self):
        for device in (Device.cpu(), Device.cuda(0), Device.cuda(5)):
            assert Device.parse(str(device)) == device

    def test_str_format(self):
        assert str(Device.cpu()) == "cpu"
        assert str(Device.cuda(1)) == "cuda:1"

    def test_equality_and_hash(self):
        assert Device.cuda(1) == Device.cuda(1)
        assert Device.cuda(1) != Device.cuda(2)
        assert len({Device.cuda(1), Device.cuda(1), Device.cpu()}) == 2
