"""Tests for device specs, the roofline cost model and the power model."""

import pytest

from repro.hardware.costmodel import KernelCostModel
from repro.hardware.power import PowerModel
from repro.hardware.specs import A100, V100, XEON_CPU, NEW_PLATFORM, DeviceSpec, get_device_spec, register_device_spec
from repro.torchsim.kernel import KernelDesc, KernelKind


def gemm(flops=1e10, bytes_total=1e8, dtype="float32"):
    return KernelDesc(
        name="gemm", kind=KernelKind.GEMM, flops=flops,
        bytes_read=bytes_total * 0.75, bytes_written=bytes_total * 0.25,
        occupancy=1.0, locality=0.85, metadata={"dtype": dtype},
    )


def elementwise(numel=1e7):
    return KernelDesc(
        name="ew", kind=KernelKind.ELEMENTWISE, flops=numel,
        bytes_read=numel * 4, bytes_written=numel * 4, occupancy=1.0, locality=0.75,
    )


class TestDeviceSpecs:
    def test_lookup_by_name_case_insensitive(self):
        assert get_device_spec("a100") is A100
        assert get_device_spec("V100") is V100
        assert get_device_spec("cpu") is XEON_CPU

    def test_unknown_spec_raises_with_known_list(self):
        with pytest.raises(KeyError, match="known specs"):
            get_device_spec("H999")

    def test_register_custom_spec(self):
        custom = A100.clone(name="TestChip", peak_fp32_tflops=100.0)
        register_device_spec(custom)
        assert get_device_spec("testchip").peak_fp32_tflops == 100.0

    def test_a100_faster_than_v100(self):
        assert A100.peak_fp32_tflops > V100.peak_fp32_tflops
        assert A100.mem_bandwidth_gbps > V100.mem_bandwidth_gbps

    def test_new_platform_faster_than_a100(self):
        assert NEW_PLATFORM.peak_fp32_tflops > A100.peak_fp32_tflops
        assert NEW_PLATFORM.mem_bandwidth_gbps > A100.mem_bandwidth_gbps

    def test_unit_conversions(self):
        assert A100.peak_fp32_flops == pytest.approx(19.5e12)
        assert A100.mem_bandwidth_bps == pytest.approx(1555e9)

    def test_clone_preserves_other_fields(self):
        clone = A100.clone(tdp_w=500.0)
        assert clone.tdp_w == 500.0
        assert clone.num_sms == A100.num_sms


class TestKernelCostModel:
    def test_compute_bound_kernel_ignores_bandwidth(self):
        model = KernelCostModel(A100)
        desc = gemm(flops=1e12, bytes_total=1e6)
        assert model.dominant_roof(desc) == "compute"
        assert model.duration_us(desc) == pytest.approx(model.compute_time_us(desc) + 0.5, rel=0.01)

    def test_memory_bound_kernel(self):
        model = KernelCostModel(A100)
        desc = elementwise(1e8)
        assert model.dominant_roof(desc) == "memory"

    def test_duration_has_minimum(self):
        model = KernelCostModel(A100)
        tiny = KernelDesc(name="tiny", kind=KernelKind.ELEMENTWISE, flops=10, bytes_read=10, bytes_written=10)
        assert model.duration_us(tiny) >= 1.5

    def test_faster_device_shorter_duration(self):
        a100 = KernelCostModel(A100)
        cpu = KernelCostModel(XEON_CPU)
        desc = gemm()
        assert a100.duration_us(desc) < cpu.duration_us(desc)

    def test_fp16_faster_than_fp32_on_a100(self):
        model = KernelCostModel(A100)
        assert model.duration_us(gemm(dtype="float16")) < model.duration_us(gemm(dtype="float32"))

    def test_clock_scale_slows_compute(self):
        full = KernelCostModel(A100, clock_scale=1.0)
        throttled = KernelCostModel(A100, clock_scale=0.5)
        desc = gemm(flops=1e12, bytes_total=1e6)
        assert throttled.duration_us(desc) > full.duration_us(desc)

    def test_flops_mode_ignores_memory_roof(self):
        roofline = KernelCostModel(A100, mode="roofline")
        flops_only = KernelCostModel(A100, mode="flops")
        desc = elementwise(1e8)
        assert flops_only.duration_us(desc) < roofline.duration_us(desc)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            KernelCostModel(A100, mode="magic")

    def test_invalid_clock_scale_rejected(self):
        with pytest.raises(ValueError):
            KernelCostModel(A100, clock_scale=0.0)

    def test_low_locality_slows_memory_bound_kernel(self):
        model = KernelCostModel(A100)
        friendly = elementwise(1e8)
        hostile = elementwise(1e8)
        hostile.locality = 0.0
        assert model.duration_us(hostile) > model.duration_us(friendly)

    def test_with_clock_scale_returns_new_model(self):
        model = KernelCostModel(A100)
        scaled = model.with_clock_scale(0.7)
        assert scaled.clock_scale == pytest.approx(0.7)
        assert model.clock_scale == 1.0


class TestPowerModel:
    def test_no_limit_means_full_clock(self):
        assert PowerModel(A100).clock_scale == pytest.approx(1.0)

    def test_lower_limit_lower_clock(self):
        low = PowerModel(A100, power_limit_w=150.0)
        high = PowerModel(A100, power_limit_w=350.0)
        assert low.clock_scale < high.clock_scale <= 1.0

    def test_limit_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(A100, power_limit_w=50.0)
        with pytest.raises(ValueError):
            PowerModel(A100, power_limit_w=1000.0)

    def test_average_power_capped_at_limit(self):
        model = PowerModel(A100, power_limit_w=200.0)
        assert model.average_power_w(busy_fraction=1.0, utilization=1.0) <= 200.0

    def test_idle_device_draws_idle_power(self):
        model = PowerModel(A100)
        assert model.average_power_w(0.0, 0.0) == pytest.approx(A100.idle_power_w)

    def test_busier_device_draws_more_power(self):
        model = PowerModel(A100)
        assert model.average_power_w(1.0, 0.9) > model.average_power_w(0.5, 0.9)

    def test_energy_scales_with_time(self):
        model = PowerModel(A100)
        assert model.energy_j(2e6, 1.0, 0.8) == pytest.approx(2 * model.energy_j(1e6, 1.0, 0.8))

    def test_energy_efficiency_positive(self):
        model = PowerModel(A100, power_limit_w=250.0)
        assert model.energy_efficiency(1.0, 1e4, 0.9, 0.8) > 0.0
