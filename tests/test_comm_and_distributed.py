"""Tests for communication operators, process groups and work handles."""

import pytest

from repro.hardware.network import CollectiveCostModel, InterconnectSpec
from repro.torchsim import Runtime, Tensor
from repro.torchsim.distributed import DistributedContext, ProcessGroup, Work
from repro.torchsim.kernel import KernelKind, OpCategory
from repro.torchsim.stream import COMM_STREAM


def make_runtime(world_size=8, rank=0):
    dist = DistributedContext(rank=rank, world_size=world_size)
    return Runtime("A100", rank=rank, dist=dist)


class TestProcessGroups:
    def test_default_group_covers_all_ranks(self):
        dist = DistributedContext(rank=0, world_size=4)
        assert dist.default_group.ranks == (0, 1, 2, 3)
        assert dist.default_group.size == 4

    def test_new_group_gets_unique_id(self):
        dist = DistributedContext(rank=0, world_size=8)
        first = dist.new_group([0, 1, 2, 3])
        second = dist.new_group([4, 5, 6, 7])
        assert first.pg_id != second.pg_id
        assert dist.get_group(first.pg_id) is first

    def test_group_for_description_reuses_existing(self):
        dist = DistributedContext(rank=0, world_size=4)
        description = {"ranks": [0, 1, 2, 3], "backend": "nccl"}
        assert dist.group_for_description(description) is dist.default_group

    def test_group_for_description_creates_missing(self):
        dist = DistributedContext(rank=0, world_size=8)
        group = dist.group_for_description({"ranks": [0, 2, 4, 6], "backend": "nccl"})
        assert group.ranks == (0, 2, 4, 6)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ProcessGroup(1, (0, 1), backend="smoke-signals")

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            ProcessGroup(1, (0, 0, 1))

    def test_rank_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DistributedContext(rank=8, world_size=8)


class TestCollectiveOps:
    def test_all_reduce_kernel_on_comm_stream(self):
        rt = make_runtime()
        rt.call("c10d::all_reduce", [Tensor.empty((1024, 1024))], "sum", None, False)
        launch = rt.gpu.launches[0]
        assert launch.stream_id == COMM_STREAM
        assert launch.desc.kind == KernelKind.COLLECTIVE
        assert launch.category == OpCategory.COMM

    def test_blocking_all_reduce_waits(self):
        rt = make_runtime()
        rt.call("c10d::all_reduce", [Tensor.empty((4096, 4096))], "sum", None, False)
        assert rt.now() >= rt.gpu.launches[0].end

    def test_async_all_reduce_returns_work(self):
        rt = make_runtime()
        work = rt.call("c10d::all_reduce", [Tensor.empty((4096, 4096))], "sum", None, True)
        assert isinstance(work, Work)
        assert rt.now() < rt.gpu.launches[0].end
        work.wait()
        assert rt.now() >= rt.gpu.launches[0].end

    def test_all_to_all_and_all_gather_run(self):
        rt = make_runtime()
        tensors = [Tensor.empty((256, 256))]
        rt.call("c10d::all_to_all", tensors, tensors, None, False)
        rt.call("c10d::all_gather", tensors, tensors, None, False)
        assert len(rt.gpu.launches) == 2

    def test_single_process_collective_degrades_to_local(self):
        rt = Runtime("A100")  # no distributed context
        rt.call("c10d::all_reduce", [Tensor.empty((1024, 1024))], "sum", None, False)
        assert len(rt.gpu.launches) == 1

    def test_larger_world_size_costs_more(self):
        small = make_runtime(world_size=2)
        large = make_runtime(world_size=64)
        payload = [Tensor.empty((4096, 4096))]
        small.call("c10d::all_reduce", payload, "sum", None, False)
        large.call("c10d::all_reduce", payload, "sum", None, False)
        assert large.gpu.launches[0].duration > small.gpu.launches[0].duration

    def test_barrier_and_broadcast(self):
        rt = make_runtime()
        rt.call("c10d::barrier", None, False)
        rt.call("c10d::broadcast", [Tensor.empty((128,))], 0, None, False)
        assert len(rt.gpu.launches) == 2


class TestCollectiveCostModel:
    def test_all_reduce_scales_with_bytes(self):
        model = CollectiveCostModel()
        assert model.all_reduce_us(1e9, 8) > model.all_reduce_us(1e6, 8)

    def test_inter_node_slower_than_intra_node(self):
        model = CollectiveCostModel(InterconnectSpec(gpus_per_node=8))
        assert model.all_reduce_us(1e8, 16) > model.all_reduce_us(1e8, 8)

    def test_all_reduce_moves_twice_reduce_scatter(self):
        model = CollectiveCostModel()
        assert model.all_reduce_us(1e9, 8) > model.reduce_scatter_us(1e9, 8)

    def test_world_size_one_is_cheap(self):
        model = CollectiveCostModel()
        assert model.all_reduce_us(1e9, 1) < 50.0

    def test_delay_scale_multiplies_duration(self):
        base = CollectiveCostModel()
        scaled = CollectiveCostModel(delay_scale=3.0)
        assert scaled.all_reduce_us(1e8, 8) == pytest.approx(3.0 * base.all_reduce_us(1e8, 8))

    def test_extra_delay_added(self):
        base = CollectiveCostModel()
        padded = CollectiveCostModel(extra_delay_us=500.0)
        assert padded.all_to_all_us(1e8, 8) == pytest.approx(base.all_to_all_us(1e8, 8) + 500.0)

    def test_collective_dispatch_by_name(self):
        model = CollectiveCostModel()
        assert model.collective_us("c10d::all_reduce", 1e8, 8) == pytest.approx(model.all_reduce_us(1e8, 8))
        assert model.collective_us("all_to_all", 1e8, 8) == pytest.approx(model.all_to_all_us(1e8, 8))
        with pytest.raises(ValueError):
            model.collective_us("c10d::unknown_collective", 1e8, 8)

    def test_p2p_inter_node_slower(self):
        model = CollectiveCostModel()
        assert model.p2p_us(1e8, same_node=False) > model.p2p_us(1e8, same_node=True)
