"""Tests for the TorchScript-style IR builder/parser/compiler."""

import pytest

from repro.torchsim import Runtime, Tensor
from repro.torchsim.jit import CompilationUnit, CompiledFunction, build_ir, parse_ir


class TestBuildIR:
    def test_tensor_args_become_graph_inputs(self):
        text = build_ir("aten::add", [("self", "Tensor(float32)", None), ("other", "Tensor(float32)", None), ("alpha", "Int", 1)])
        assert text.startswith("graph(")
        assert "%self.1 : Tensor" in text
        assert "prim::Constant[value=1]()" in text
        assert "aten::add(" in text
        assert text.rstrip().endswith("return (%out)")

    def test_tensor_list_normalised_to_tensor_array(self):
        text = build_ir("aten::cat", [("tensors", "GenericList[Tensor(float32),Tensor(float32)]", None), ("dim", "Int", 1)])
        assert "Tensor[]" in text

    def test_no_tensor_args(self):
        text = build_ir("c10d::barrier", [("async_op", "Bool", False)])
        assert text.startswith("graph()")

    def test_string_and_dict_constants(self):
        text = build_ir(
            "c10d::all_reduce",
            [
                ("tensors", "GenericList[Tensor(float32)]", None),
                ("reduce_op", "String", "sum"),
                ("pg", "Dict", {"pg_id": 0, "ranks": [0, 1], "backend": "nccl"}),
                ("async_op", "Bool", True),
            ],
        )
        assert "'sum'" in text
        assert "'ranks': [0, 1]" in text


class TestParseIR:
    def test_round_trip_simple_graph(self):
        text = build_ir("aten::add", [("self", "Tensor(float32)", None), ("other", "Tensor(float32)", None), ("alpha", "Int", 1)])
        graph = parse_ir(text)
        assert len(graph.inputs) == 2
        assert len(graph.constants) == 1
        assert graph.constants[0].value == 1
        assert graph.call.op_name == "aten::add"
        assert graph.returns == ["%out"]

    def test_operand_plan_orders_inputs_and_constants(self):
        text = build_ir("aten::dropout", [("input", "Tensor(float32)", None), ("p", "Double", 0.5), ("train", "Bool", True)])
        plan = parse_ir(text).operand_plan()
        assert plan[0] == ("input", 0)
        assert plan[1] == ("const", 0.5)
        assert plan[2] == ("const", True)

    def test_constant_types_parsed(self):
        text = build_ir("x::y", [("a", "Tensor(float32)", None), ("values", "GenericList[Int]", [1, 2, 3]), ("flag", "Bool", False), ("name", "String", "hi")])
        constants = parse_ir(text).constants
        assert [c.value for c in constants] == [[1, 2, 3], False, "hi"]

    def test_invalid_text_rejected(self):
        with pytest.raises(ValueError):
            parse_ir("not a graph")
        with pytest.raises(ValueError):
            parse_ir("graph(%x.1 : Tensor):\n  return (%x.1)")

    def test_paper_example_graph_parses(self):
        text = (
            "graph(%x.1 : Tensor,\n"
            "      %y.1 : Tensor):\n"
            "  %4 : int = prim::Constant[value=1]()\n"
            "  %5 : Tensor = aten::add(%x.1, %y.1, %4)\n"
            "  return (%5)"
        )
        graph = parse_ir(text)
        assert graph.call.op_name == "aten::add"
        assert graph.call.operands == ("%x.1", "%y.1", "%4")


class TestCompilationUnit:
    def test_compiled_function_dispatches_through_runtime(self):
        rt = Runtime("A100")
        text = build_ir("aten::mm", [("self", "Tensor(float32)", None), ("mat2", "Tensor(float32)", None)])
        function = CompilationUnit().create_function("mm_1", parse_ir(text))
        out = function(rt, Tensor.empty((8, 16)), Tensor.empty((16, 4)))
        assert out.shape == (8, 4)
        assert len(rt.gpu.launches) == 1

    def test_compiled_function_bakes_constants(self):
        rt = Runtime("A100")
        text = build_ir("aten::dropout", [("input", "Tensor(float32)", None), ("p", "Double", 0.5), ("train", "Bool", False)])
        function = CompilationUnit().create_function("dropout_1", parse_ir(text))
        function(rt, Tensor.empty((128,)))
        # train=False -> the dropout is a no-op and launches nothing.
        assert rt.gpu.launches == []

    def test_wrong_arity_rejected(self):
        text = build_ir("aten::relu", [("self", "Tensor(float32)", None)])
        function = CompilationUnit().create_function("relu_1", parse_ir(text))
        with pytest.raises(TypeError):
            function(Runtime("A100"))

    def test_find_function(self):
        unit = CompilationUnit()
        text = build_ir("aten::relu", [("self", "Tensor(float32)", None)])
        created = unit.create_function("relu_1", parse_ir(text))
        assert unit.find_function("relu_1") is created
        assert unit.find_function("missing") is None
        assert len(unit) == 1
