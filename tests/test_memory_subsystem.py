"""Tests for the device-memory simulation subsystem (``repro.memory``).

Covers the four layers and their integrations:

* the caching-allocator model (rounding, splitting, reuse, reserved vs
  allocated, OOM),
* tensor lifetime analysis (roles, liveness, external persistence),
* footprint timelines and OOM what-ifs through the ``track-memory`` stage,
  the session facade, the cluster engine, the scale-down validator and the
  CLI, and
* the acceptance contract: with tracking disabled, replay results and
  cache digests are **byte-identical** to pre-memory behaviour; with it
  enabled, an undersized budget yields a structured OOM event naming the
  failing operator.
"""

from __future__ import annotations

import json

import pytest

import repro.api as api
from repro.bench.harness import capture_workload
from repro.core.pipeline import ReplayPipeline, TrackMemoryStage
from repro.core.scaledown import ScaleDownConfig, ScaleDownEmulator
from repro.et.analyzer import (
    backward_node_ids,
    node_input_tensor_bytes,
    node_output_tensor_bytes,
    tensor_bytes_from_shape,
    tensor_ref_bytes,
)
from repro.memory import (
    ROLE_ACTIVATION,
    ROLE_GRADIENT,
    ROLE_PARAMETER,
    CachingAllocator,
    SimulatedOOM,
    SimulatedOOMError,
    analyze_lifetimes,
    device_capacity_bytes,
    format_bytes,
    parse_byte_size,
    simulate_memory,
)
from repro.memory.allocator import (
    LARGE_SEGMENT_BYTES,
    MIN_BLOCK_BYTES,
    SMALL_SEGMENT_BYTES,
    round_block_size,
    segment_size_for,
)
from repro.service.cli import main as cli_main
from repro.service.repository import TraceRepository
from repro.workloads import DistributedRunner
from tests.conftest import make_small_rm


# ----------------------------------------------------------------------
# Allocator model
# ----------------------------------------------------------------------
class TestCachingAllocator:
    def test_rounding_and_segment_sizing(self):
        assert round_block_size(1) == MIN_BLOCK_BYTES
        assert round_block_size(512) == 512
        assert round_block_size(513) == 1024
        assert segment_size_for(4096) == SMALL_SEGMENT_BYTES
        assert segment_size_for(2 << 20) == LARGE_SEGMENT_BYTES
        # Dedicated large segments round to 2 MiB.
        assert segment_size_for(11 << 20) == 12 << 20

    def test_reserved_vs_allocated_and_cache_reuse(self):
        allocator = CachingAllocator(capacity_bytes=1 << 30)
        block = allocator.malloc(100_000)
        stats = allocator.stats()
        assert stats.allocated_bytes == round_block_size(100_000)
        assert stats.reserved_bytes == SMALL_SEGMENT_BYTES
        assert stats.reserved_bytes >= stats.allocated_bytes

        allocator.free(block)
        assert allocator.allocated_bytes == 0
        # Freed memory stays reserved (cached), and the next same-size
        # malloc is served from the cache without touching the device.
        assert allocator.reserved_bytes == SMALL_SEGMENT_BYTES
        before = allocator.stats().device_mallocs
        allocator.malloc(100_000)
        after = allocator.stats()
        assert after.device_mallocs == before
        assert after.cache_hits >= 1

    def test_block_splitting_shares_one_segment(self):
        allocator = CachingAllocator(capacity_bytes=1 << 30)
        blocks = [allocator.malloc(10_000) for _ in range(8)]
        stats = allocator.stats()
        assert stats.segments == 1  # all split out of one 2 MiB segment
        assert stats.active_blocks == 8
        for block in blocks:
            allocator.free(block)
        # Full free coalesces back to a single cached block.
        assert allocator.stats().cached_blocks == 1
        allocator.check_consistency()

    def test_empty_cache_returns_pool_to_device(self):
        allocator = CachingAllocator(capacity_bytes=1 << 30)
        block = allocator.malloc(5 << 20)
        allocator.free(block)
        assert allocator.reserved_bytes > 0
        released = allocator.empty_cache()
        assert released == LARGE_SEGMENT_BYTES
        assert allocator.reserved_bytes == 0
        assert allocator.stats().segments == 0

    def test_oom_after_cache_release_retry(self):
        allocator = CachingAllocator(capacity_bytes=24 << 20)
        cached = allocator.malloc(15 << 20)  # dedicated 16 MiB segment
        allocator.free(cached)               # stays reserved (cached)
        # An 18 MiB segment only fits once the cached 16 MiB is released —
        # the allocator must retry after empty_cache, not OOM.
        survivor = allocator.malloc(18 << 20)
        assert allocator.stats().device_frees == 1
        assert allocator.reserved_bytes == 18 << 20
        # With 18 MiB live, nothing releasable remains: a further large
        # request is a genuine OOM carrying the stats snapshot.
        with pytest.raises(SimulatedOOM) as exc:
            allocator.malloc(30 << 20)
        assert exc.value.requested_bytes == round_block_size(30 << 20)
        assert exc.value.stats.capacity_bytes == 24 << 20
        allocator.free(survivor)
        allocator.check_consistency()

    def test_double_free_rejected(self):
        allocator = CachingAllocator(capacity_bytes=1 << 30)
        block = allocator.malloc(1024)
        allocator.free(block)
        with pytest.raises(ValueError):
            allocator.free(block)

    def test_per_stream_free_lists_not_shared(self):
        allocator = CachingAllocator(capacity_bytes=1 << 30)
        block = allocator.malloc(100_000, stream=1)
        allocator.free(block)
        # A different stream cannot reuse stream 1's cached block.
        allocator.malloc(100_000, stream=2)
        assert allocator.stats().segments == 2

    def test_device_capacity_and_parse_helpers(self):
        assert device_capacity_bytes("V100") == 16 * (1 << 30)
        assert parse_byte_size("2GB") == 2 << 30
        assert parse_byte_size("512MiB") == 512 << 20
        assert parse_byte_size(12345) == 12345
        assert format_bytes(20 << 20) == "20.00 MiB"


# ----------------------------------------------------------------------
# Lifetime analysis
# ----------------------------------------------------------------------
class TestLifetimes:
    def test_roles_and_liveness(self, small_linear_capture):
        trace = small_linear_capture.execution_trace
        analysis = analyze_lifetimes(trace)
        roles = analysis.by_role_bytes()
        # A training iteration has weights/inputs, activations and grads.
        assert roles[ROLE_PARAMETER] > 0
        assert roles[ROLE_ACTIVATION] > 0
        assert roles[ROLE_GRADIENT] > 0
        assert analysis.external_bytes() == roles[ROLE_PARAMETER]
        assert 0 < analysis.live_bytes_peak() <= analysis.total_bytes()

    def test_gradients_come_from_autograd_scope(self, small_linear_capture):
        trace = small_linear_capture.execution_trace
        backward = backward_node_ids(trace)
        assert backward  # the capture ran a backward pass
        analysis = analyze_lifetimes(trace)
        for lifetime in analysis.lifetimes.values():
            if lifetime.role == ROLE_GRADIENT:
                assert lifetime.producer_node_id in backward

    def test_external_tensors_never_die(self, small_linear_capture):
        analysis = analyze_lifetimes(small_linear_capture.execution_trace)
        dead = {
            lifetime.key
            for index in range(len(analysis.operators))
            for lifetime in analysis.deaths_at(index)
        }
        for lifetime in analysis.lifetimes.values():
            if lifetime.external:
                assert lifetime.key not in dead

    def test_size_helpers_agree(self, small_linear_capture):
        trace = small_linear_capture.execution_trace
        node = next(node for node in trace.operators() if node.output_tensor_refs())
        ref = node.output_tensor_refs()[0]
        assert tensor_ref_bytes(ref) == ref[3] * ref[4]
        assert node_output_tensor_bytes(node) == sum(
            tensor_ref_bytes(r) for r in node.output_tensor_refs()
        )
        assert node_input_tensor_bytes(node) >= 0
        assert tensor_bytes_from_shape([8, 4], "Tensor(float32)") == 128
        assert tensor_bytes_from_shape([8, 4], "Tensor(int64)") == 256


# ----------------------------------------------------------------------
# Reports and the session facade
# ----------------------------------------------------------------------
class TestMemoryReplay:
    def test_simulate_memory_report_shape(self, small_linear_capture):
        report = simulate_memory(
            small_linear_capture.execution_trace, device="A100", trace_name="lin"
        )
        assert report.fits
        assert report.peak_allocated_bytes >= report.live_bytes_peak
        assert report.peak_reserved_bytes >= report.peak_allocated_bytes
        assert report.capacity_bytes == device_capacity_bytes("A100")
        assert report.timeline  # one point per selected operator
        assert report.timeline[-1].index == len(report.timeline) - 1
        data = report.to_dict()
        json.dumps(data)  # fully serialisable
        assert data["fits"] is True

    def test_session_with_memory_attaches_report(self, small_linear_capture):
        hook = api.MemoryHook()
        result = (
            api.replay(small_linear_capture).iterations(1).with_memory().hook(hook).run()
        )
        assert result.memory_report is not None
        assert result.memory_report.fits
        assert hook.report is result.memory_report
        assert hook.peak_allocated_bytes == result.memory_report.peak_allocated_bytes

    def test_equivalence_with_tracking_disabled(self, small_linear_capture):
        """The acceptance contract: tracking off == pre-memory behaviour,
        tracking on changes nothing about the measurements."""
        plain = api.replay(small_linear_capture).iterations(2).run()
        tracked = api.replay(small_linear_capture).iterations(2).with_memory().run()
        assert plain.memory_report is None
        assert tracked.memory_report is not None
        # Byte-identical measurements (and therefore cache digests, which
        # hash exactly this serialised summary).
        assert (
            json.dumps(plain.summarize().to_dict(), sort_keys=True)
            == json.dumps(tracked.summarize().to_dict(), sort_keys=True)
        )
        # The config carries no memory fields, so config digests cannot
        # change either.
        assert "memory" not in json.dumps(sorted(api.ReplayConfig().to_dict()))

    def test_undersized_budget_records_structured_oom(self, small_linear_capture):
        result = (
            api.replay(small_linear_capture)
            .with_memory(budget="64KB")
            .run()
        )
        report = result.memory_report
        assert not report.fits
        assert report.oom is not None
        assert report.oom.op_name  # names the failing operator
        assert report.oom.requested_bytes > 0
        assert report.oom.capacity_bytes == 64 << 10
        assert report.oom.snapshot["stats"]["capacity_bytes"] == 64 << 10

    def test_undersized_budget_raise_mode(self, small_linear_capture):
        with pytest.raises(SimulatedOOMError) as exc:
            api.replay(small_linear_capture).with_memory(
                budget="64KB", on_oom="raise"
            ).run()
        assert exc.value.event.op_name
        assert "OOM at op" in str(exc.value)

    def test_memory_hook_captures_report_even_on_oom_raise(self, small_linear_capture):
        hook = api.MemoryHook()
        with pytest.raises(SimulatedOOMError):
            api.replay(small_linear_capture).with_memory(
                budget="64KB", on_oom="raise"
            ).hook(hook).run()
        assert hook.report is not None
        assert not hook.report.fits

    def test_with_memory_twice_replaces_stage(self, small_linear_capture):
        session = api.replay(small_linear_capture).with_memory().with_memory(budget="1GB")
        assert session.pipeline.stage_names().count("track-memory") == 1

    def test_track_memory_stage_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            TrackMemoryStage(on_oom="explode")

    def test_default_pipeline_has_no_memory_stage(self):
        assert "track-memory" not in ReplayPipeline.default().stage_names()


# ----------------------------------------------------------------------
# Cluster integration
# ----------------------------------------------------------------------
class TestClusterMemory:
    @pytest.fixture(scope="class")
    def rm_fleet(self):
        runner = DistributedRunner(
            lambda rank, world: make_small_rm(rank, world),
            world_size=2,
            warmup_iterations=0,
        )
        return runner.run()

    def test_per_rank_footprints_and_max_rank(self, rm_fleet):
        report = api.replay_cluster(rm_fleet).on("A100").with_memory().run()
        assert report.has_memory
        assert len(report.ranks) == 2
        for rank in report.ranks:
            assert rank.memory is not None
            assert rank.memory.fits
            assert rank.peak_allocated_bytes > 0
        assert report.max_memory_rank in {0, 1}
        assert report.peak_allocated_bytes == max(
            r.peak_allocated_bytes for r in report.ranks
        )
        data = report.to_dict()
        assert data["memory"]["max_memory_rank"] == report.max_memory_rank
        assert data["ranks"][0]["memory"]["fits"] is True

    def test_memoryless_report_serialises_without_memory_keys(self, rm_fleet):
        report = api.replay_cluster(rm_fleet).on("A100").run()
        assert not report.has_memory
        data = report.to_dict()
        assert "memory" not in data
        assert all("memory" not in rank for rank in data["ranks"])

    def test_oom_rank_recorded_not_raised(self, rm_fleet):
        report = (
            api.replay_cluster(rm_fleet).on("A100").with_memory(budget="64KB").run()
        )
        assert report.oom_ranks == [0, 1]  # both ranks exceed 64 KiB
        assert report.to_dict()["memory"]["oom_ranks"] == [0, 1]


# ----------------------------------------------------------------------
# Scale-down validation
# ----------------------------------------------------------------------
class TestScaleDownValidation:
    def test_fit_passes_and_reports(self, small_linear_capture):
        emulator = ScaleDownEmulator(ScaleDownConfig(emulated_world_size=4, replay_ranks=2))
        report = emulator.validate_memory(small_linear_capture.execution_trace)
        assert report.fits
        assert report.device == "A100"

    def test_unfit_raises_before_replay(self, small_linear_capture):
        emulator = ScaleDownEmulator(ScaleDownConfig(emulated_world_size=4, replay_ranks=2))
        with pytest.raises(SimulatedOOMError):
            emulator.validate_memory(small_linear_capture.execution_trace, budget="64KB")

    def test_emulate_with_validation_attaches_reports(self, small_linear_capture):
        emulator = ScaleDownEmulator(
            ScaleDownConfig(emulated_world_size=2, replay_ranks=1, iterations=1)
        )
        outcome = emulator.emulate(
            [small_linear_capture.execution_trace], validate_memory=True
        )
        assert len(outcome["memory_reports"]) == 1
        assert outcome["memory_reports"][0].fits
        # Without the flag the key is absent — pre-PR dict shape.
        plain = emulator.emulate([small_linear_capture.execution_trace])
        assert "memory_reports" not in plain


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def memory_cli_repo(tmp_path_factory):
    root = tmp_path_factory.mktemp("memory_cli_traces")
    repo = TraceRepository(root)
    capture = capture_workload(make_small_rm(), warmup_iterations=0)
    repo.add("rm", capture.execution_trace)
    return root


class TestMemoryCli:
    def test_memory_report_table(self, memory_cli_repo, capsys):
        assert cli_main(["memory-report", "--repo", str(memory_cli_repo)]) == 0
        out = capsys.readouterr().out
        assert "Simulated device memory on A100" in out
        assert "peak allocated" in out

    def test_memory_report_json_and_oom_exit_code(self, memory_cli_repo, capsys):
        code = cli_main(
            ["memory-report", "--repo", str(memory_cli_repo),
             "--budget-gb", "0.0001", "--json"]
        )
        assert code == 1  # the trace does not fit the what-if budget
        payload = json.loads(capsys.readouterr().out)
        assert payload["oom"] == ["rm"]
        report = payload["reports"]["rm"]
        assert report["fits"] is False
        assert report["oom"]["op_name"]

    def test_memory_report_unknown_trace_errors(self, memory_cli_repo, capsys):
        assert cli_main(
            ["memory-report", "--repo", str(memory_cli_repo), "--trace", "nope"]
        ) == 1
        err = capsys.readouterr().err
        assert "not found" in err
        # Clean message, not a repr-quoted KeyError payload.
        assert not err.startswith('error: "')

    def test_orphan_dependent_flags_are_usage_errors(self, memory_cli_repo, capsys):
        assert cli_main(
            ["replay", "--repo", str(memory_cli_repo), "--memory-budget-gb", "8"]
        ) == 2
        assert "--memory-budget-gb requires --memory" in capsys.readouterr().err
        assert cli_main(
            ["memory-report", "--repo", str(memory_cli_repo), "--timeline"]
        ) == 2
        assert "--json" in capsys.readouterr().err

    def test_replay_with_memory_flag(self, memory_cli_repo, capsys):
        assert cli_main(
            ["replay", "--repo", str(memory_cli_repo), "--memory", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["memory"]["rm"]["fits"] is True
        assert payload["memory"]["rm"]["peak_allocated_bytes"] > 0

    def test_replay_without_memory_flag_has_no_memory_key(self, memory_cli_repo, capsys):
        assert cli_main(["replay", "--repo", str(memory_cli_repo), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "memory" not in payload

    def test_version_json(self, capsys):
        assert cli_main(["version", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["package"] == "repro"
