"""Tests for the stage pipeline and the ``repro.api`` facade.

Covers stage order and context threading, hook invocation, pipeline
composition (insert/replace/skip), the fluent session builder, and the
facade-vs-legacy equivalence guarantee: ``repro.api.replay(...)`` must
produce byte-identical ``ReplayResultSummary`` dicts (and cache keys) to
the deprecated ``Replayer.run()`` path.
"""

import json
import warnings

import pytest

import repro.api as api
from repro.bench.harness import capture_workload
from repro.core.pipeline import (
    BUILD_STAGE_NAMES,
    ExecuteStage,
    MeasureStage,
    ReplayContext,
    ReplayHook,
    ReplayPipeline,
    ReplayPipelineError,
    ReplayStage,
)
from repro.core.replayer import ReplayConfig, Replayer
from repro.service.cache import cache_key
from tests.conftest import make_small_rm

EXPECTED_ORDER = [
    "select",
    "reconstruct",
    "materialize-tensors",
    "assign-streams",
    "init-comms",
    "execute",
    "measure",
]


def _legacy_run(capture, config):
    """Run the deprecated Replayer path with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return Replayer(
            capture.execution_trace, capture.profiler_trace, config
        ).run()


def _summary_json(result) -> str:
    return json.dumps(result.summarize().to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Pipeline structure and context threading
# ----------------------------------------------------------------------
class TestPipelineStructure:
    def test_default_stage_order(self):
        assert ReplayPipeline.default().stage_names() == EXPECTED_ORDER

    def test_build_only_pipeline(self):
        assert ReplayPipeline.build_only().stage_names() == list(BUILD_STAGE_NAMES)

    def test_context_threading_through_build_stages(self, small_linear_capture):
        context = ReplayContext(
            trace=small_linear_capture.execution_trace,
            profiler_trace=small_linear_capture.profiler_trace,
            config=ReplayConfig(),
        )
        stages = {s.name: s for s in ReplayPipeline.default_stages()}
        assert context.selection is None
        stages["select"].run(context)
        assert context.selection is not None and context.selection.entries
        stages["reconstruct"].run(context)
        assert set(context.reconstructed) == {
            e.node.id for e in context.selection.supported_entries()
        }
        stages["materialize-tensors"].run(context)
        assert context.tensor_manager is not None
        stages["assign-streams"].run(context)
        assert context.stream_assignment is not None
        stages["init-comms"].run(context)
        assert context.runtime is not None
        stages["execute"].run(context)
        assert context.iteration_times_us and context.replayed_ops > 0
        stages["measure"].run(context)
        assert context.result is not None
        assert context.result.replayed_ops == context.replayed_ops

    def test_stage_requires_prerequisites(self, small_linear_capture):
        context = ReplayContext(trace=small_linear_capture.execution_trace)
        with pytest.raises(ReplayPipelineError, match="runtime"):
            ExecuteStage().run(context)

    def test_run_without_measure_stage_raises(self, small_linear_capture):
        pipeline = ReplayPipeline.default().skip("measure")
        context = ReplayContext(
            trace=small_linear_capture.execution_trace,
            profiler_trace=small_linear_capture.profiler_trace,
        )
        with pytest.raises(ReplayPipelineError, match="without producing a result"):
            pipeline.run(context)

    def test_unknown_stage_name_raises(self):
        with pytest.raises(KeyError, match="no stage named"):
            ReplayPipeline.default().skip("no-such-stage")


class TestPipelineComposition:
    def test_insert_before_and_after(self):
        class Marker(ReplayStage):
            name = "marker"

            def run(self, context):
                context.extras.setdefault("marks", []).append(self.name)

        pipeline = ReplayPipeline.default()
        pipeline.insert_before("execute", Marker())
        assert pipeline.stage_names().index("marker") == EXPECTED_ORDER.index("execute")
        pipeline.skip("marker").insert_after("execute", Marker())
        assert (
            pipeline.stage_names().index("marker")
            == pipeline.stage_names().index("execute") + 1
        )

    def test_custom_stage_sees_and_mutates_context(self, small_linear_capture):
        class TapStage(ReplayStage):
            name = "tap"

            def run(self, context):
                context.extras["ops_after_execute"] = context.replayed_ops

        pipeline = ReplayPipeline.default().insert_after("execute", TapStage())
        context = ReplayContext(
            trace=small_linear_capture.execution_trace,
            profiler_trace=small_linear_capture.profiler_trace,
        )
        result = pipeline.run(context)
        assert context.extras["ops_after_execute"] == result.replayed_ops > 0

    def test_replace_stage(self, small_linear_capture):
        class StubMeasure(MeasureStage):
            def run(self, context):
                super().run(context)
                context.extras["measured_by"] = "stub"

        pipeline = ReplayPipeline.default().replace("measure", StubMeasure())
        context = ReplayContext(
            trace=small_linear_capture.execution_trace,
            profiler_trace=small_linear_capture.profiler_trace,
        )
        pipeline.run(context)
        assert context.extras["measured_by"] == "stub"

    def test_clone_is_independent(self):
        base = ReplayPipeline.default()
        clone = base.clone().skip("measure")
        assert "measure" in base.stage_names()
        assert "measure" not in clone.stage_names()


# ----------------------------------------------------------------------
# Hooks
# ----------------------------------------------------------------------
class RecordingHook(ReplayHook):
    def __init__(self):
        self.events = []
        self.op_count = 0
        self.measuring_flags = set()

    def on_stage_start(self, context, stage):
        self.events.append(("start", stage.name))

    def on_stage_end(self, context, stage):
        self.events.append(("end", stage.name))

    def on_op_replayed(self, context, entry, output):
        self.op_count += 1
        self.measuring_flags.add(context.measuring)

    def on_error(self, context, stage, error):
        self.events.append(("error", stage.name, type(error).__name__))


class TestHooks:
    def test_stage_lifecycle_events_in_order(self, small_linear_capture):
        hook = RecordingHook()
        api.replay(small_linear_capture).hook(hook).run()
        starts = [name for kind, name in hook.events if kind == "start"]
        ends = [name for kind, name in hook.events if kind == "end"]
        assert starts == EXPECTED_ORDER
        assert ends == EXPECTED_ORDER

    def test_op_replayed_counts_match_result(self, small_linear_capture):
        hook = RecordingHook()
        result = api.replay(small_linear_capture).iterations(2, warmup=0).hook(hook).run()
        assert hook.op_count == result.replayed_ops
        assert hook.measuring_flags == {True}

    def test_warmup_ops_flagged_not_measuring(self, small_linear_capture):
        hook = RecordingHook()
        result = api.replay(small_linear_capture).iterations(1, warmup=1).hook(hook).run()
        assert hook.op_count == 2 * result.replayed_ops
        assert hook.measuring_flags == {True, False}

    def test_on_error_fires_and_reraises(self, small_linear_capture):
        class BoomStage(ReplayStage):
            name = "boom"

            def run(self, context):
                raise RuntimeError("boom")

        hook = RecordingHook()
        session = (
            api.replay(small_linear_capture)
            .hook(hook)
            .insert_stage(BoomStage(), before="execute")
        )
        with pytest.raises(RuntimeError, match="boom"):
            session.run()
        assert ("error", "boom", "RuntimeError") in hook.events

    def test_buggy_on_error_hook_does_not_mask_stage_error(self, small_linear_capture):
        class BoomStage(ReplayStage):
            name = "boom"

            def run(self, context):
                raise RuntimeError("the real failure")

        class BuggyHook(ReplayHook):
            def on_error(self, context, stage, error):
                raise AttributeError("hook bug")

        recorder = RecordingHook()
        session = (
            api.replay(small_linear_capture)
            .hook(BuggyHook(), recorder)
            .insert_stage(BoomStage(), before="execute")
        )
        # The original stage error propagates, and later hooks still hear it.
        with pytest.raises(RuntimeError, match="the real failure"):
            session.run()
        assert ("error", "boom", "RuntimeError") in recorder.events

    def test_optrace_and_timing_hooks(self, small_linear_capture):
        op_trace = api.OpTraceHook()
        timings = api.StageTimingHook()
        taps = []
        result = (
            api.replay(small_linear_capture)
            .iterations(1)
            .hook(op_trace, timings, api.MetricsTapHook(taps.append))
            .run()
        )
        assert len(op_trace.measured()) == result.replayed_ops
        assert set(timings.durations_s) == set(EXPECTED_ORDER)
        assert len(taps) == 1
        assert taps[0]["replayed_ops"] == result.replayed_ops


# ----------------------------------------------------------------------
# The fluent session builder
# ----------------------------------------------------------------------
class TestReplaySession:
    def test_fluent_configuration(self, small_linear_capture):
        session = (
            api.replay(small_linear_capture)
            .on("V100")
            .select(categories=("aten",), subtrace="## forward ##")
            .iterations(3, warmup=1)
            .power_limit(250.0)
        )
        config = session.config
        assert config.device == "V100"
        assert config.categories == ("aten",)
        assert config.subtrace_label == "## forward ##"
        assert config.iterations == 3
        assert config.warmup_iterations == 1
        assert config.power_limit_w == 250.0

    def test_capture_source_seeds_device_and_profiler(self, small_linear_capture):
        session = api.replay(small_linear_capture)
        assert session.config.device == small_linear_capture.device
        result = session.iterations(2).run()
        assert len(result.iteration_times_us) == 2

    def test_configure_rejects_unknown_fields(self, small_linear_capture):
        with pytest.raises(TypeError):
            api.replay(small_linear_capture).configure(iteratons=3)

    def test_replay_from_path(self, small_linear_capture, tmp_path):
        path = small_linear_capture.execution_trace.save(tmp_path / "linear_et.json")
        result = api.replay(str(path)).iterations(1).run()
        assert result.replayed_ops > 0

    def test_path_source_is_loaded_lazily(self, tmp_path):
        # Building a session must not touch the filesystem; only run() does.
        session = api.replay(str(tmp_path / "missing.json")).iterations(1)
        with pytest.raises(FileNotFoundError):
            session.run()

    def test_dry_build_via_run_context(self, small_linear_capture):
        context = api.replay(small_linear_capture).without_stage(
            "init-comms", "execute", "measure"
        ).run_context()
        assert context.selection is not None
        assert context.reconstructed
        assert context.result is None and context.runtime is None

    def test_replay_rejects_bad_source(self):
        with pytest.raises(TypeError, match="expects an ExecutionTrace"):
            api.replay(42)

    def test_sessions_do_not_share_pipelines(self, small_linear_capture):
        one = api.replay(small_linear_capture).without_stage("measure")
        two = api.replay(small_linear_capture)
        assert "measure" not in one.pipeline.stage_names()
        assert "measure" in two.pipeline.stage_names()


# ----------------------------------------------------------------------
# Facade <-> legacy equivalence
# ----------------------------------------------------------------------
class TestEquivalenceWithLegacyReplayer:
    def test_param_linear_summaries_byte_identical(self, small_linear_capture):
        config = ReplayConfig(iterations=2, warmup_iterations=1)
        legacy = _legacy_run(small_linear_capture, config)
        modern = api.replay(small_linear_capture).using(config).run()
        assert _summary_json(modern) == _summary_json(legacy)

    def test_rm_summaries_byte_identical(self):
        capture = capture_workload(make_small_rm(), warmup_iterations=0)
        config = ReplayConfig(iterations=1)
        legacy = _legacy_run(capture, config)
        modern = api.replay(capture).using(config).run()
        assert legacy.skipped_ops > 0  # RM exercises the unsupported path
        assert _summary_json(modern) == _summary_json(legacy)

    def test_cache_keys_unchanged_across_paths(self, small_linear_capture):
        config = ReplayConfig(iterations=2)
        digest = small_linear_capture.execution_trace.digest()
        assert cache_key(digest, config) == cache_key(digest, ReplayConfig(iterations=2))

    def test_legacy_run_emits_deprecation_warning(self, small_linear_capture):
        replayer = Replayer(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            ReplayConfig(),
        )
        with pytest.warns(DeprecationWarning, match="repro.api"):
            replayer.run()

    def test_legacy_prebuilt_plan_respected(self, small_linear_capture):
        replayer = Replayer(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            ReplayConfig(),
        )
        plan = replayer.build()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = replayer.run()
        assert replayer.plan is plan
        assert result.replayed_ops == len(plan.reconstructed)


# ----------------------------------------------------------------------
# capture / compare / sweep facade entry points
# ----------------------------------------------------------------------
class TestFacadeEntryPoints:
    def test_capture_and_compare(self, small_param_linear):
        capture = api.capture(small_param_linear, device="A100", warmup_iterations=0)
        assert capture.execution_trace is not None
        row = api.compare(small_param_linear, device="A100", capture_result=capture)
        assert row.replay_error < 0.15

    def test_sweep_facade_runs_and_caches(self, small_linear_capture, tmp_path):
        repo = tmp_path / "traces"
        repo.mkdir()
        small_linear_capture.execution_trace.save(repo / "linear_et.json")
        cache_dir = tmp_path / "cache"
        first = api.sweep(
            repo,
            devices=["A100", "V100"],
            base=ReplayConfig(iterations=1),
            cache_dir=cache_dir,
            backend="serial",
        )
        assert first.batch.replayed_count == 2 and first.batch.error_count == 0
        second = api.sweep(
            repo,
            devices=["A100", "V100"],
            base=ReplayConfig(iterations=1),
            cache_dir=cache_dir,
            backend="serial",
        )
        assert second.batch.cached_count == 2 and second.batch.replayed_count == 0

    def test_sweep_rejects_spec_plus_builder_kwargs(self, tmp_path):
        from repro.service.sweep import SweepSpec

        with pytest.raises(ValueError, match="not both"):
            api.sweep(tmp_path, spec=SweepSpec(), devices=["V100"])
