"""Property-based tests (hypothesis) for schemas, traces and argument encoding."""

from hypothesis import given, settings, strategies as st

from repro.et.schema import ETNode, ROOT_NODE_ID, decode_tensor_ref, encode_arg
from repro.et.builder import ETBuilder
from repro.et.trace import ExecutionTrace
from repro.torchsim.dtypes import DType
from repro.torchsim.ops.schema import parse_schema
from repro.torchsim.tensor import Tensor

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
identifier = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8)
scalar_types = st.sampled_from(["Tensor", "Tensor?", "int", "float", "bool", "Scalar", "str", "int[]"])


@st.composite
def schema_strings(draw):
    namespace = draw(st.sampled_from(["aten", "c10d", "fbgemm", "mylib"]))
    name = draw(identifier)
    arg_count = draw(st.integers(min_value=1, max_value=5))
    args = []
    for index in range(arg_count):
        arg_type = draw(scalar_types)
        arg_name = f"{draw(identifier)}{index}"
        args.append(f"{arg_type} {arg_name}")
    returns = draw(st.sampled_from(["Tensor", "(Tensor, Tensor)", "Tensor[]"]))
    return f"{namespace}::{name}({', '.join(args)}) -> {returns}"


@st.composite
def trace_structures(draw):
    """Random parent/child trees of operator and annotation nodes."""
    node_count = draw(st.integers(min_value=1, max_value=25))
    trace = ExecutionTrace()
    trace.add_node(ETNode(name="[root]", id=ROOT_NODE_ID, parent=0))
    ids = [ROOT_NODE_ID]
    for offset in range(node_count):
        node_id = ROOT_NODE_ID + 1 + offset
        parent = draw(st.sampled_from(ids))
        is_operator = draw(st.booleans())
        trace.add_node(
            ETNode(
                name=f"aten::op{offset}" if is_operator else f"label_{offset}",
                id=node_id,
                parent=parent,
                op_schema=f"aten::op{offset}(Tensor x) -> Tensor" if is_operator else "",
            )
        )
        ids.append(node_id)
    return trace


# ----------------------------------------------------------------------
# Schema parser properties
# ----------------------------------------------------------------------
class TestSchemaParserProperties:
    @given(schema_strings())
    @settings(max_examples=200, deadline=None)
    def test_parse_to_string_round_trip_is_stable(self, schema_str):
        parsed = parse_schema(schema_str)
        reparsed = parse_schema(parsed.to_string())
        assert parsed == reparsed

    @given(schema_strings())
    @settings(max_examples=100, deadline=None)
    def test_argument_count_preserved(self, schema_str):
        parsed = parse_schema(schema_str)
        declared_args = schema_str.split(") ->", 1)[0].split("(", 1)[1]
        assert len(parsed.args) == len([a for a in declared_args.split(",") if a.strip()])


# ----------------------------------------------------------------------
# Argument encoding properties
# ----------------------------------------------------------------------
class TestEncodeArgProperties:
    @given(st.one_of(st.integers(min_value=-10**9, max_value=10**9), st.booleans(),
                     st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=20)))
    @settings(max_examples=200, deadline=None)
    def test_scalars_encoded_verbatim_with_empty_shape(self, value):
        encoded, shape, type_str = encode_arg(value)
        assert encoded == value
        assert shape == []
        assert type_str in {"Int", "Bool", "Double", "String"}

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=0, max_size=4),
           st.sampled_from(list(DType)))
    @settings(max_examples=200, deadline=None)
    def test_tensor_encoding_round_trips_identity(self, shape, dtype):
        tensor = Tensor.empty(tuple(shape), dtype=dtype)
        encoded, encoded_shape, type_str = encode_arg(tensor)
        assert decode_tensor_ref(encoded) == tensor.id
        assert tuple(encoded_shape) == tensor.shape
        assert type_str == f"Tensor({dtype.type_name})"
        # The identity carries numel and itemsize consistently.
        assert encoded[3] == tensor.numel
        assert encoded[4] == dtype.itemsize


# ----------------------------------------------------------------------
# Trace container properties
# ----------------------------------------------------------------------
class TestTraceProperties:
    @given(trace_structures())
    @settings(max_examples=100, deadline=None)
    def test_serialisation_round_trip(self, trace):
        restored = ExecutionTrace.from_json(trace.to_json())
        assert len(restored) == len(trace)
        assert [n.id for n in restored.sorted_nodes()] == [n.id for n in trace.sorted_nodes()]

    @given(trace_structures())
    @settings(max_examples=100, deadline=None)
    def test_descendants_never_include_self_and_are_closed(self, trace):
        for node in trace.sorted_nodes():
            descendants = trace.descendants(node.id)
            ids = {d.id for d in descendants}
            assert node.id not in ids
            # Closure: a descendant's children are also descendants.
            for descendant in descendants:
                for child in trace.children(descendant.id):
                    assert child.id in ids

    @given(trace_structures())
    @settings(max_examples=100, deadline=None)
    def test_validation_passes_and_compose_preserves_operator_count(self, trace):
        assert ETBuilder.validate(trace) == []
        composed = ETBuilder.compose([trace, trace])
        assert ETBuilder.validate(composed) == []
        assert len(composed.operators()) == 2 * len(trace.operators())

    @given(trace_structures())
    @settings(max_examples=100, deadline=None)
    def test_top_level_selection_has_no_nested_pairs(self, trace):
        from repro.et.analyzer import iter_top_level_operators

        selected = iter_top_level_operators(trace)
        selected_ids = {node.id for node in selected}
        for node in selected:
            descendant_ids = {d.id for d in trace.descendants(node.id)}
            assert not (descendant_ids & selected_ids), "a selected operator's descendant was also selected"
