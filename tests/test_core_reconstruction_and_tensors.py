"""Tests for operator reconstruction and tensor management."""

import pytest

from repro.core.reconstruction import OperatorReconstructor, ReconstructionError
from repro.core.selection import OperatorSelector
from repro.core.tensors import EmbeddingValueConfig, TensorManager
from repro.et.schema import ETNode
from repro.torchsim import Runtime, Tensor
from repro.torchsim.dtypes import DType


class TestOperatorReconstructor:
    def _addmm_node(self, trace):
        return trace.find_by_name("aten::addmm")[0]

    def test_reconstruct_linear_node(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        node = trace.find_by_name("aten::linear")[0]
        reconstructed = OperatorReconstructor().reconstruct(node)
        assert reconstructed.op_name == "aten::linear"
        assert "graph(" in reconstructed.ir_text
        assert reconstructed.function.num_inputs == len(reconstructed.tensor_arg_positions)

    def test_reconstructed_callable_executes(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        node = self._addmm_node(trace)
        reconstructed = OperatorReconstructor().reconstruct(node)
        rt = Runtime("A100")
        inputs = [Tensor.empty(tuple(shape)) for shape in node.input_shapes if shape]
        out = reconstructed.function(rt, *inputs)
        assert out.shape == tuple(node.output_shapes[0])
        assert rt.gpu.launches

    def test_cache_returns_same_object(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        node = self._addmm_node(trace)
        reconstructor = OperatorReconstructor()
        assert reconstructor.reconstruct(node) is reconstructor.reconstruct(node)
        assert len(reconstructor) == 1

    def test_annotation_node_rejected(self):
        with pytest.raises(ReconstructionError):
            OperatorReconstructor().reconstruct(ETNode(name="## forward ##", id=2, parent=1))

    def test_unknown_operator_rejected(self):
        node = ETNode(name="aten::not_an_op", id=2, parent=1,
                      op_schema="aten::not_an_op(Tensor x) -> Tensor")
        with pytest.raises(ReconstructionError, match="not registered"):
            OperatorReconstructor().reconstruct(node)

    def test_invalid_schema_rejected(self):
        node = ETNode(name="aten::mm", id=2, parent=1, op_schema="garbage schema text")
        with pytest.raises(ReconstructionError):
            OperatorReconstructor().reconstruct(node)

    def test_non_tensor_constants_baked_in(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        node = trace.find_by_name("aten::mse_loss")[0]
        reconstructed = OperatorReconstructor().reconstruct(node)
        # mse_loss(self, target, reduction=1): two tensor inputs only.
        assert reconstructed.function.num_inputs == 2


class TestTensorManager:
    def test_classification_intermediate_vs_external(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        selection = OperatorSelector().select(trace)
        manager = TensorManager()
        classification = manager.classify(selection.entries)
        assert classification.external, "parameters and inputs must be external"
        assert classification.intermediate, "activations must be intermediate"
        overlap = set(classification.external) & set(classification.intermediate)
        assert not overlap

    def test_external_tensor_materialized_with_recorded_shape(self):
        manager = TensorManager()
        tensor = Tensor.empty((16, 32), dtype=DType.FLOAT16)
        value, shape, type_str = (list(tensor.id), list(tensor.shape), tensor.type_string())
        replayed = manager.get_input(value, shape, type_str)
        assert replayed.shape == (16, 32)
        assert replayed.dtype == DType.FLOAT16

    def test_same_reference_returns_same_tensor(self):
        manager = TensorManager()
        tensor = Tensor.empty((8,))
        ref = list(tensor.id)
        first = manager.get_input(ref, [8], "Tensor(float32)")
        second = manager.get_input(ref, [8], "Tensor(float32)")
        assert first is second

    def test_register_outputs_feeds_downstream_ops(self):
        manager = TensorManager()
        produced = Tensor.empty((4, 4))
        node = ETNode(
            name="aten::mm", id=2, parent=1, op_schema="aten::mm(Tensor a, Tensor b) -> Tensor",
            outputs=[list(produced.id)], output_shapes=[[4, 4]], output_types=["Tensor(float32)"],
        )
        replayed_output = Tensor.empty((4, 4))
        manager.register_outputs(node, replayed_output)
        fetched = manager.get_input(list(produced.id), [4, 4], "Tensor(float32)")
        assert fetched is replayed_output

    def test_tensor_list_input(self):
        manager = TensorManager()
        tensors = [Tensor.empty((2,)), Tensor.empty((3,))]
        value = [list(t.id) for t in tensors]
        shapes = [[2], [3]]
        type_str = "GenericList[Tensor(float32),Tensor(float32)]"
        result = manager.get_input(value, shapes, type_str)
        assert isinstance(result, list)
        assert [t.shape for t in result] == [(2,), (3,)]

    def test_non_tensor_passthrough(self):
        manager = TensorManager()
        assert manager.get_input(5, [], "Int") == 5
        assert manager.get_input("sum", [], "String") == "sum"

    def test_reset_intermediates_keeps_external(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        selection = OperatorSelector().select(trace)
        manager = TensorManager()
        manager.classify(selection.entries)
        for entry in selection.entries:
            manager.gather_inputs(entry.node)
        before = manager.registered_count()
        manager.reset_intermediates()
        after = manager.registered_count()
        assert after <= before
        assert after >= len(set(manager.classification.external)) - before  # externals retained

    def test_embedding_config_generates_indices_payload(self):
        manager = TensorManager(embedding_config=EmbeddingValueConfig(table_size=1000, seed=3))
        indices = Tensor.empty((256,), dtype=DType.INT64)
        replayed = manager.get_input(list(indices.id), [256], "Tensor(int64)")
        assert replayed.data is not None
        assert replayed.data.max() < 1000
        assert replayed.data.min() >= 0

    def test_without_embedding_config_indices_have_no_payload(self):
        manager = TensorManager(embedding_config=None)
        indices = Tensor.empty((256,), dtype=DType.INT64)
        replayed = manager.get_input(list(indices.id), [256], "Tensor(int64)")
        assert replayed.data is None


class TestEmbeddingValueConfig:
    def test_uniform_distribution(self):
        config = EmbeddingValueConfig(table_size=50, distribution="uniform", seed=1)
        values = config.generate(1000)
        assert values.min() >= 0 and values.max() < 50

    def test_zipf_is_skewed(self):
        config = EmbeddingValueConfig(table_size=10_000, distribution="zipf", seed=1)
        uniform = EmbeddingValueConfig(table_size=10_000, distribution="uniform", seed=1)
        zipf_hot_mass = (config.generate(10_000) < 10).mean()
        uniform_hot_mass = (uniform.generate(10_000) < 10).mean()
        # Zipf concentrates far more mass on the hottest rows than uniform.
        assert zipf_hot_mass > 10 * max(uniform_hot_mass, 1e-3)

    def test_deterministic_for_fixed_seed(self):
        config = EmbeddingValueConfig(seed=9)
        assert (config.generate(100) == config.generate(100)).all()

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingValueConfig(distribution="gaussian").generate(10)
