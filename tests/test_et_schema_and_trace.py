"""Tests for the execution-trace node schema and trace container."""

import pytest

from repro.et.schema import ETNode, ROOT_NODE_ID, decode_tensor_ref, encode_arg, is_tensor_type
from repro.et.trace import ExecutionTrace
from repro.torchsim.tensor import Tensor
from repro.torchsim.dtypes import DType


class TestEncodeArg:
    def test_tensor_encoded_as_identity_tuple(self):
        tensor = Tensor.empty((4, 8), dtype=DType.FLOAT32)
        value, shape, type_str = encode_arg(tensor)
        assert shape == [4, 8]
        assert type_str == "Tensor(float32)"
        assert decode_tensor_ref(value) == tensor.id

    def test_tensor_list_encoded_as_generic_list(self):
        tensors = [Tensor.empty((2,)), Tensor.empty((3,))]
        value, shape, type_str = encode_arg(tensors)
        assert type_str.startswith("GenericList[Tensor(")
        assert shape == [[2], [3]]
        assert len(value) == 2

    def test_scalars(self):
        assert encode_arg(5) == (5, [], "Int")
        assert encode_arg(2.5) == (2.5, [], "Double")
        assert encode_arg(True) == (True, [], "Bool")
        assert encode_arg("sum") == ("sum", [], "String")
        assert encode_arg(None) == (None, [], "None")

    def test_bool_not_confused_with_int(self):
        _, _, type_str = encode_arg(False)
        assert type_str == "Bool"

    def test_int_list(self):
        value, shape, type_str = encode_arg([1, 2, 3])
        assert value == [1, 2, 3]
        assert type_str == "GenericList[Int]"

    def test_dict_preserved(self):
        description = {"pg_id": 0, "ranks": [0, 1], "backend": "nccl"}
        value, _, type_str = encode_arg(description)
        assert value == description
        assert type_str == "Dict"

    def test_decode_rejects_non_refs(self):
        assert decode_tensor_ref([1, 2, 3]) is None
        assert decode_tensor_ref("not a ref") is None
        assert decode_tensor_ref(None) is None

    def test_is_tensor_type(self):
        assert is_tensor_type("Tensor(float32)")
        assert not is_tensor_type("Int")
        assert not is_tensor_type("GenericList[Tensor(float32)]")


class TestETNode:
    def test_namespace(self):
        assert ETNode(name="aten::add", id=2, parent=1).namespace == "aten"
        assert ETNode(name="## forward ##", id=2, parent=1).namespace == ""

    def test_is_operator_requires_schema(self):
        op = ETNode(name="aten::add", id=2, parent=1, op_schema="aten::add(Tensor a) -> Tensor")
        annotation = ETNode(name="## forward ##", id=3, parent=1)
        assert op.is_operator
        assert not annotation.is_operator

    def test_tensor_refs_extracted(self):
        tensor = Tensor.empty((4,))
        value, shape, type_str = encode_arg(tensor)
        node = ETNode(
            name="aten::relu", id=2, parent=1, op_schema="aten::relu(Tensor self) -> Tensor",
            inputs=[value], input_shapes=[shape], input_types=[type_str],
            outputs=[value], output_shapes=[shape], output_types=[type_str],
        )
        assert node.input_tensor_refs() == [tensor.id]
        assert node.output_tensor_refs() == [tensor.id]

    def test_round_trip_dict(self):
        node = ETNode(
            name="aten::add", id=7, parent=1, op_schema="aten::add(Tensor a, Tensor b) -> Tensor",
            inputs=[1], input_shapes=[[]], input_types=["Int"], attrs={"tid": "main"},
        )
        assert ETNode.from_dict(node.to_dict()) == node


def build_sample_trace():
    trace = ExecutionTrace(metadata={"workload": "sample"})
    trace.add_node(ETNode(name="[root]", id=ROOT_NODE_ID, parent=0))
    trace.add_node(ETNode(name="aten::linear", id=2, parent=ROOT_NODE_ID,
                          op_schema="aten::linear(Tensor a, Tensor b) -> Tensor"))
    trace.add_node(ETNode(name="aten::t", id=3, parent=2, op_schema="aten::t(Tensor a) -> Tensor"))
    trace.add_node(ETNode(name="aten::addmm", id=4, parent=2,
                          op_schema="aten::addmm(Tensor a, Tensor b, Tensor c) -> Tensor"))
    trace.add_node(ETNode(name="## forward ##", id=5, parent=ROOT_NODE_ID))
    trace.add_node(ETNode(name="aten::relu", id=6, parent=5, op_schema="aten::relu(Tensor a) -> Tensor"))
    return trace


class TestExecutionTrace:
    def test_sorted_nodes_in_execution_order(self):
        trace = build_sample_trace()
        assert [node.id for node in trace.sorted_nodes()] == [1, 2, 3, 4, 5, 6]

    def test_children_and_descendants(self):
        trace = build_sample_trace()
        assert [c.id for c in trace.children(2)] == [3, 4]
        assert [d.id for d in trace.descendants(ROOT_NODE_ID)] == [2, 3, 4, 5, 6]

    def test_get_and_has(self):
        trace = build_sample_trace()
        assert trace.get(4).name == "aten::addmm"
        assert trace.has(4)
        assert not trace.has(99)
        with pytest.raises(KeyError):
            trace.get(99)

    def test_root_nodes(self):
        trace = build_sample_trace()
        assert [n.id for n in trace.root_nodes()] == [2, 5]

    def test_operators_excludes_annotations(self):
        trace = build_sample_trace()
        names = {node.name for node in trace.operators()}
        assert "## forward ##" not in names
        assert "aten::linear" in names

    def test_find_by_label(self):
        trace = build_sample_trace()
        assert len(trace.find_by_label("forward")) == 1

    def test_json_round_trip(self):
        trace = build_sample_trace()
        restored = ExecutionTrace.from_json(trace.to_json())
        assert len(restored) == len(trace)
        assert restored.metadata == trace.metadata
        assert restored.get(4).name == "aten::addmm"

    def test_save_and_load(self, tmp_path):
        trace = build_sample_trace()
        path = trace.save(tmp_path / "trace.json")
        assert path.exists()
        assert len(ExecutionTrace.load(path)) == len(trace)

    def test_index_refreshes_after_adding_nodes(self):
        trace = build_sample_trace()
        assert trace.has(6)
        trace.add_node(ETNode(name="aten::sum", id=7, parent=ROOT_NODE_ID,
                              op_schema="aten::sum(Tensor a) -> Tensor"))
        assert trace.has(7)
        assert [c.id for c in trace.children(ROOT_NODE_ID)] == [2, 5, 7]
