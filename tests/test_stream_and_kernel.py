"""Unit tests for streams and kernel descriptors."""

import pytest

from repro.torchsim.kernel import KernelDesc, KernelKind, KernelLaunch, OpCategory
from repro.torchsim.stream import (
    COMM_STREAM,
    DEFAULT_COMPUTE_STREAM,
    MEMCPY_STREAM,
    Stream,
    StreamPool,
)


class TestStreamPool:
    def test_default_streams_present(self):
        pool = StreamPool()
        assert DEFAULT_COMPUTE_STREAM in pool.ids()
        assert COMM_STREAM in pool.ids()
        assert MEMCPY_STREAM in pool.ids()

    def test_get_existing_stream_returns_same_object(self):
        pool = StreamPool()
        assert pool.get(DEFAULT_COMPUTE_STREAM) is pool.default

    def test_get_unknown_stream_creates_it(self):
        pool = StreamPool()
        stream = pool.get(42)
        assert stream.stream_id == 42
        assert 42 in pool.ids()

    def test_named_accessors(self):
        pool = StreamPool()
        assert pool.comm.stream_id == COMM_STREAM
        assert pool.memcpy.stream_id == MEMCPY_STREAM

    def test_stream_str(self):
        assert str(Stream(7)) == "stream 7"


class TestKernelDesc:
    def test_bytes_total(self):
        desc = KernelDesc(name="k", kind=KernelKind.GEMM, bytes_read=100, bytes_written=50)
        assert desc.bytes_total == 150

    def test_arithmetic_intensity(self):
        desc = KernelDesc(name="k", kind=KernelKind.GEMM, flops=300, bytes_read=100, bytes_written=50)
        assert desc.arithmetic_intensity == pytest.approx(2.0)

    def test_arithmetic_intensity_zero_bytes(self):
        desc = KernelDesc(name="k", kind=KernelKind.GEMM, flops=300)
        assert desc.arithmetic_intensity == 0.0

    def test_default_occupancy_range(self):
        desc = KernelDesc(name="k", kind=KernelKind.ELEMENTWISE)
        assert 0.0 < desc.occupancy <= 1.0


class TestKernelLaunch:
    def test_unresolved_launch(self):
        desc = KernelDesc(name="k", kind=KernelKind.GEMM)
        launch = KernelLaunch(
            desc=desc, stream_id=7, launch_ts=0.0, duration=10.0,
            op_node_id=1, op_name="aten::mm", category=OpCategory.ATEN,
        )
        assert not launch.resolved

    def test_resolved_launch(self):
        desc = KernelDesc(name="k", kind=KernelKind.GEMM)
        launch = KernelLaunch(
            desc=desc, stream_id=7, launch_ts=0.0, duration=10.0,
            op_node_id=1, op_name="aten::mm", category=OpCategory.ATEN,
            start=5.0, end=15.0,
        )
        assert launch.resolved

    def test_category_values(self):
        assert OpCategory.ATEN.value == "aten"
        assert OpCategory.COMM.value == "comms"
        assert OpCategory.FUSED.value == "fused"
        assert OpCategory.CUSTOM.value == "custom"
