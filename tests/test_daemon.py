"""Tests for the replay daemon (repro.daemon).

Covers the full stack bottom-up — job model, fair queue, durable store,
executor, orchestrator, HTTP API — and the subsystem's acceptance
scenarios:

* pause -> snapshot -> daemon restart -> resume produces byte-identical
  results vs an uninterrupted run, for a single-rank sweep AND a 4-rank
  cluster job;
* two clients submitting overlapping sweeps replay each unique
  (trace, config) point exactly once;
* result-cache eviction honours TTL + max-entries without evicting an
  in-flight job's pinned inputs.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.bench.harness import capture_workload
from repro.daemon import (
    DAEMON_SCHEMA_VERSION,
    JobQueue,
    JobRecord,
    JobSpec,
    JobStateError,
    JobStore,
    ReplayDaemon,
)
from repro.daemon.client import DaemonClient, DaemonClientError
from repro.daemon.daemon import JobAccessError, UnknownJobError
from repro.daemon.jobs import TERMINAL_STATES, cluster_snapshot, sweep_snapshot
from repro.daemon.server import DaemonServer
from repro.service import TraceRepository
from repro.service.cache import ResultCache
from repro.workloads.ddp import DistributedRunner
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from tests.conftest import make_small_rm

WAIT_S = 180.0


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def daemon_repo(tmp_path_factory) -> Path:
    """Two small single-rank traces for sweep jobs."""
    root = tmp_path_factory.mktemp("daemon_traces")
    repo = TraceRepository(root)
    workloads = [
        ParamLinearWorkload(
            ParamLinearConfig(batch_size=8, num_layers=2, hidden_size=32, input_size=32)
        ),
        make_small_rm(),
    ]
    for workload in workloads:
        capture = capture_workload(workload, warmup_iterations=0)
        repo.add(workload.name, capture.execution_trace)
    return root


@pytest.fixture(scope="module")
def fleet_dir(tmp_path_factory) -> Path:
    """A 4-rank DDP-RM fleet in the on-disk replay-dist format."""
    directory = tmp_path_factory.mktemp("daemon_fleet")
    runner = DistributedRunner(
        lambda rank, world: make_small_rm(rank=rank, world_size=world), world_size=4
    )
    DistributedRunner.save_captures(runner.run(), directory)
    return directory


def sweep_payload(repo: Path, iterations: int = 1, devices=("A100",)) -> dict:
    return {
        "repo": str(repo),
        "traces": None,
        "devices": list(devices),
        "axes": {},
        "base": {"iterations": iterations},
    }


def cluster_payload(fleet: Path, iterations: int = 2) -> dict:
    return {
        "trace_dir": str(fleet),
        "config": {"device": "A100", "iterations": iterations},
    }


def summaries_of(result: dict) -> dict:
    """Per-label replay summaries — the byte-identity comparison surface
    (the ``cached`` flags legitimately differ between runs)."""
    return {row["label"]: row["summary"] for row in result["points"]}


def cache_keys_of(result: dict) -> dict:
    return {row["label"]: row["cache_key"] for row in result["points"]}


# ----------------------------------------------------------------------
# Job model
# ----------------------------------------------------------------------
class TestJobModel:
    def test_legal_lifecycle(self):
        record = JobRecord(id="j1", owner="alice", spec=JobSpec("sweep"))
        for state in ("running", "pausing", "paused", "queued", "running", "completed"):
            record.transition(state)
        assert record.terminal

    def test_illegal_transition_raises(self):
        record = JobRecord(id="j1", owner="alice", spec=JobSpec("sweep"))
        record.transition("running")
        record.transition("completed")
        with pytest.raises(JobStateError, match="cannot go"):
            record.transition("running")

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
    def test_terminal_states_never_leave(self, terminal):
        record = JobRecord(id="j1", owner="alice", spec=JobSpec("cluster"), state=terminal)
        for state in ("queued", "running", "pausing", "paused"):
            with pytest.raises(JobStateError):
                record.transition(state)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec("mapreduce")

    def test_record_round_trips_through_dict(self):
        record = JobRecord(
            id="j2",
            owner="bob",
            spec=JobSpec("sweep", {"repo": "traces/"}),
            priority=3,
            seq=7,
            snapshot=sweep_snapshot({}, "rm@A100", None),
        )
        clone = JobRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()

    def test_schema_version_gate(self):
        data = JobRecord(id="j3", owner="a", spec=JobSpec("sweep")).to_dict()
        data["schema_version"] = DAEMON_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            JobRecord.from_dict(data)

    def test_snapshots_are_versioned(self):
        assert sweep_snapshot({}, None, None)["schema_version"] == DAEMON_SCHEMA_VERSION
        assert cluster_snapshot(4)["schema_version"] == DAEMON_SCHEMA_VERSION


# ----------------------------------------------------------------------
# Fair queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_priority_dispatches_first(self):
        queue = JobQueue()
        queue.push(0, "alice", 1, "low")
        queue.push(5, "bob", 2, "high")
        assert queue.pop(timeout=0.1) == "high"
        assert queue.pop(timeout=0.1) == "low"

    def test_round_robin_across_owners(self):
        """A burst from one tenant cannot bury an interleaved tenant:
        dispatch alternates owners no matter the submission order."""
        queue = JobQueue()
        for seq in range(1, 4):
            queue.push(0, "alice", seq, f"a{seq}")
        queue.push(0, "bob", 4, "b1")
        order = [queue.pop(timeout=0.1) for _ in range(4)]
        assert order == ["a1", "b1", "a2", "a3"]

    def test_fifo_within_one_owner(self):
        queue = JobQueue()
        for seq in (3, 1, 2):
            queue.push(0, "alice", seq, f"a{seq}")
        assert [queue.pop(timeout=0.1) for _ in range(3)] == ["a1", "a2", "a3"]

    def test_remove_drops_a_queued_job(self):
        queue = JobQueue()
        queue.push(0, "alice", 1, "a1")
        assert queue.remove("a1") is True
        assert queue.remove("a1") is False
        assert queue.pop(timeout=0.05) is None

    def test_close_wakes_blocked_pop(self):
        queue = JobQueue()
        results = []
        thread = threading.Thread(target=lambda: results.append(queue.pop()))
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert results == [None]
        with pytest.raises(RuntimeError, match="closed"):
            queue.push(0, "alice", 1, "a1")

    def test_depth_by_owner(self):
        queue = JobQueue()
        queue.push(0, "alice", 1, "a1")
        queue.push(0, "alice", 2, "a2")
        queue.push(0, "bob", 3, "b1")
        assert queue.depth_by_owner() == {"alice": 2, "bob": 1}
        assert len(queue) == 3


# ----------------------------------------------------------------------
# Durable store
# ----------------------------------------------------------------------
class TestJobStore:
    def make_record(self, job_id: str, state: str = "queued", seq: int = 1) -> JobRecord:
        return JobRecord(
            id=job_id, owner="alice", spec=JobSpec("sweep", {"repo": "r"}),
            state=state, seq=seq,
        )

    def test_save_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        record = self.make_record("j1")
        store.save(record)
        assert store.load("j1").to_dict() == record.to_dict()

    def test_recover_requeues_interrupted_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(self.make_record("j1", state="running", seq=1))
        store.save(self.make_record("j2", state="pausing", seq=2))
        store.save(self.make_record("j3", state="paused", seq=3))
        store.save(self.make_record("j4", state="completed", seq=4))
        states = {record.id: record.state for record in store.recover()}
        assert states == {
            "j1": "queued", "j2": "queued", "j3": "paused", "j4": "completed",
        }
        # The repair is itself durable.
        assert store.load("j1").state == "queued"

    def test_corrupt_files_do_not_wedge_startup(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(self.make_record("j1"))
        (store.jobs_dir / "torn.json").write_text("{ not json")
        assert [record.id for record in store.load_all()] == ["j1"]

    def test_load_all_orders_by_submission(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(self.make_record("jz", seq=2))
        store.save(self.make_record("ja", seq=1))
        assert [record.id for record in store.load_all()] == ["ja", "jz"]
        assert store.max_seq() == 2


# ----------------------------------------------------------------------
# Daemon lifecycle (in-process)
# ----------------------------------------------------------------------
class TestDaemonLifecycle:
    def test_sweep_job_completes(self, tmp_path, daemon_repo):
        with ReplayDaemon(tmp_path / "state", workers=1) as daemon:
            record = daemon.submit("alice", JobSpec("sweep", sweep_payload(daemon_repo)))
            final = daemon.wait(record.id, timeout=WAIT_S)
            assert final.state == "completed"
            result = daemon.result(record.id)
            assert result["kind"] == "sweep"
            assert result["total"] == 2
            assert {row["label"] for row in result["points"]} == {
                "param_linear@A100", "rm@A100",
            }

    def test_failed_job_carries_error_details(self, tmp_path):
        with ReplayDaemon(tmp_path / "state", workers=1) as daemon:
            record = daemon.submit(
                "alice", JobSpec("sweep", {"repo": str(tmp_path / "missing")})
            )
            final = daemon.wait(record.id, timeout=WAIT_S)
            assert final.state == "failed"
            assert final.error_type
            assert final.traceback
            with pytest.raises(JobStateError, match="no result"):
                daemon.result(record.id)

    def test_cancel_queued_job_never_runs(self, tmp_path, daemon_repo):
        daemon = ReplayDaemon(tmp_path / "state", workers=1)  # not started
        record = daemon.submit("alice", JobSpec("sweep", sweep_payload(daemon_repo)))
        daemon.cancel(record.id)
        assert daemon.get(record.id).state == "cancelled"
        assert len(daemon.queue) == 0

    def test_pause_queued_then_resume(self, tmp_path, daemon_repo):
        daemon = ReplayDaemon(tmp_path / "state", workers=1)  # not started
        record = daemon.submit("alice", JobSpec("sweep", sweep_payload(daemon_repo)))
        daemon.pause(record.id)
        assert daemon.get(record.id).state == "paused"
        daemon.resume(record.id)
        assert daemon.get(record.id).state == "queued"

    def test_illegal_operations_raise(self, tmp_path, daemon_repo):
        with ReplayDaemon(tmp_path / "state", workers=1) as daemon:
            record = daemon.submit("alice", JobSpec("sweep", sweep_payload(daemon_repo)))
            daemon.wait(record.id, timeout=WAIT_S)
            with pytest.raises(JobStateError):
                daemon.resume(record.id)
            with pytest.raises(JobStateError):
                daemon.pause(record.id)
            with pytest.raises(UnknownJobError):
                daemon.get("no-such-job")

    def test_ownership_is_enforced(self, tmp_path, daemon_repo):
        daemon = ReplayDaemon(tmp_path / "state", workers=1)
        record = daemon.submit("alice", JobSpec("sweep", sweep_payload(daemon_repo)))
        with pytest.raises(JobAccessError):
            daemon.get(record.id, owner="bob")
        with pytest.raises(JobAccessError):
            daemon.cancel(record.id, owner="bob")
        assert daemon.get(record.id, owner="alice").id == record.id
        with pytest.raises(ValueError, match="owner"):
            daemon.submit("", JobSpec("sweep", sweep_payload(daemon_repo)))

    def test_health_payload(self, tmp_path, daemon_repo):
        with ReplayDaemon(tmp_path / "state", workers=1) as daemon:
            record = daemon.submit("alice", JobSpec("sweep", sweep_payload(daemon_repo)))
            daemon.wait(record.id, timeout=WAIT_S)
            health = daemon.health()
            assert health["schema_version"] == DAEMON_SCHEMA_VERSION
            assert health["jobs"] == {"completed": 1}
            assert health["workers"] == 1
            assert "entries" in health["cache"]


# ----------------------------------------------------------------------
# Acceptance: pause -> snapshot -> restart -> resume, byte-identical
# ----------------------------------------------------------------------
class TestPauseResumeAcrossRestart:
    @staticmethod
    def _pause_asap(daemon, job_id):
        """Wait for the job to start, then request a pause; returns the
        resting record.  Tolerates the pause losing the race to the
        finish line (the caller asserts byte-identity either way)."""
        daemon.wait(
            job_id, timeout=WAIT_S,
            until=("running", "completed", "failed", "cancelled"),
        )
        try:
            daemon.pause(job_id)
        except JobStateError:
            pass  # already terminal
        return daemon.wait(job_id, timeout=WAIT_S)

    def test_sweep_resume_is_byte_identical(self, tmp_path, daemon_repo):
        payload = sweep_payload(daemon_repo, iterations=30, devices=("A100", "V100"))

        reference = ReplayDaemon(tmp_path / "ref", workers=1)
        with reference:
            ref_record = reference.submit("alice", JobSpec("sweep", payload))
            assert reference.wait(ref_record.id, timeout=WAIT_S).state == "completed"
        ref_result = ref_record.result

        state_dir = tmp_path / "state"
        first = ReplayDaemon(state_dir, workers=1)
        with first:
            record = first.submit("alice", JobSpec("sweep", payload))
            paused = self._pause_asap(first, record.id)
        if paused.state == "paused":  # the pause can lose the race to the finish
            snapshot = first.snapshot_of(record.id)
            assert snapshot["schema_version"] == DAEMON_SCHEMA_VERSION
            assert snapshot["kind"] == "sweep"

            second = ReplayDaemon(state_dir, workers=1)  # fresh process, same disk
            recovered = second.get(record.id)
            assert recovered.state == "paused"
            assert recovered.snapshot == paused.snapshot
            with second:
                second.resume(record.id)
                final = second.wait(
                    record.id, timeout=WAIT_S, until=("completed", "failed")
                )
        else:
            final = paused
        assert final.state == "completed"
        assert summaries_of(final.result) == summaries_of(ref_result)
        assert cache_keys_of(final.result) == cache_keys_of(ref_result)

    def test_cluster_resume_is_byte_identical(self, tmp_path, fleet_dir):
        payload = cluster_payload(fleet_dir, iterations=8)

        reference = ReplayDaemon(tmp_path / "ref", workers=1)
        with reference:
            ref_record = reference.submit("alice", JobSpec("cluster", payload))
            assert reference.wait(ref_record.id, timeout=WAIT_S).state == "completed"

        state_dir = tmp_path / "state"
        first = ReplayDaemon(state_dir, workers=1)
        with first:
            record = first.submit("alice", JobSpec("cluster", payload))
            paused = self._pause_asap(first, record.id)
        if paused.state == "paused":
            assert paused.snapshot["kind"] == "cluster"
            assert paused.snapshot["completed_steps"] >= 0
            second = ReplayDaemon(state_dir, workers=1)
            with second:
                second.resume(record.id)
                final = second.wait(
                    record.id, timeout=WAIT_S, until=("completed", "failed")
                )
        else:
            final = paused
        assert final.state == "completed"
        # Fleet replay is deterministic: the resumed report is the
        # uninterrupted report, byte for byte.
        assert final.result["report"] == ref_record.result["report"]

    def test_restart_requeues_mid_flight_jobs(self, tmp_path, daemon_repo):
        """A daemon killed without pausing: the job restarts from queued."""
        state_dir = tmp_path / "state"
        first = ReplayDaemon(state_dir, workers=1)  # never started
        record = first.submit("alice", JobSpec("sweep", sweep_payload(daemon_repo)))
        first.get(record.id).transition("running")  # simulate dying mid-run
        first.store.save(first.get(record.id))

        second = ReplayDaemon(state_dir, workers=1)
        assert second.get(record.id).state == "queued"
        with second:
            final = second.wait(record.id, timeout=WAIT_S)
        assert final.state == "completed"


# ----------------------------------------------------------------------
# Acceptance: exactly-once pricing across tenants
# ----------------------------------------------------------------------
class TestExactlyOncePricing:
    def test_overlapping_sweeps_price_each_point_once(self, tmp_path, daemon_repo):
        payload = sweep_payload(daemon_repo, iterations=2, devices=("A100", "V100"))
        with ReplayDaemon(tmp_path / "state", workers=2) as daemon:
            alice = daemon.submit("alice", JobSpec("sweep", payload))
            bob = daemon.submit("bob", JobSpec("sweep", payload))
            final_a = daemon.wait(alice.id, timeout=WAIT_S)
            final_b = daemon.wait(bob.id, timeout=WAIT_S)
            assert final_a.state == final_b.state == "completed"
            # Identical grids -> identical summaries for both tenants...
            assert summaries_of(final_a.result) == summaries_of(final_b.result)
            # ...and each unique (trace, config) point replayed exactly once
            # across BOTH jobs: 4 unique points, 4 replays total.
            replayed = final_a.result["replayed"] + final_b.result["replayed"]
            unique = len({row["cache_key"] for row in final_a.result["points"]})
            assert unique == 4
            assert replayed == unique
            assert daemon.cache.stats()["entries"] == unique


# ----------------------------------------------------------------------
# Acceptance: bounded cache never evicts an in-flight job's inputs
# ----------------------------------------------------------------------
class TestCacheEvictionUnderDaemon:
    def test_ttl_and_max_entries_respect_pins(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", max_entries=1, ttl_s=0.05)
        from repro.core.replayer import ReplayResultSummary

        def summary(total):
            return ReplayResultSummary(iteration_times_us=[float(total)], replayed_ops=1)

        cache.put("pinned", summary(1.0))
        cache.pin("pinned")
        time.sleep(0.1)  # both entries are past the TTL...
        cache.put("victim", summary(2.0))
        cache.evict()
        # ...but only the unpinned one goes (TTL), and max_entries=1 is
        # satisfied without touching the pinned key.
        assert cache.get("pinned") is not None
        assert cache.get("victim") is None
        cache.unpin("pinned")
        time.sleep(0.1)
        cache.evict()
        assert cache.get("pinned") is None

    def test_tight_cache_job_still_completes(self, tmp_path, daemon_repo):
        """max_entries=1 with a 2-point job: pins keep every in-flight
        input resident, and the job completes with correct results."""
        with ReplayDaemon(
            tmp_path / "state", cache_max_entries=1, workers=1
        ) as daemon:
            record = daemon.submit("alice", JobSpec("sweep", sweep_payload(daemon_repo)))
            final = daemon.wait(record.id, timeout=WAIT_S)
            assert final.state == "completed"
            assert final.result["total"] == 2
            assert all(row["summary"] for row in final.result["points"])
            daemon.cache.evict()
            assert daemon.cache.stats()["entries"] <= 1


# ----------------------------------------------------------------------
# HTTP API
# ----------------------------------------------------------------------
class TestHttpApi:
    @pytest.fixture()
    def server(self, tmp_path, daemon_repo):
        daemon = ReplayDaemon(tmp_path / "state", workers=1)
        with DaemonServer(daemon, port=0) as running:
            yield running

    def test_submit_run_result_over_http(self, server, daemon_repo):
        client = DaemonClient(server.url, client_id="alice")
        job = client.submit("sweep", sweep_payload(daemon_repo))
        assert job["state"] == "queued"
        assert job["owner"] == "alice"
        final = client.wait(job["id"], timeout=WAIT_S)
        assert final["state"] == "completed"
        assert final["has_result"] is True
        result = client.result(job["id"])
        assert result["schema_version"] == DAEMON_SCHEMA_VERSION
        assert result["result"]["total"] == 2

    def test_ownership_maps_to_403(self, server, daemon_repo):
        alice = DaemonClient(server.url, client_id="alice")
        bob = DaemonClient(server.url, client_id="bob")
        job = alice.submit("sweep", sweep_payload(daemon_repo))
        with pytest.raises(DaemonClientError) as error:
            bob.status(job["id"])
        assert error.value.status == 403
        with pytest.raises(DaemonClientError) as error:
            bob.cancel(job["id"])
        assert error.value.status == 403

    def test_listing_is_scoped_to_the_caller(self, server, daemon_repo):
        alice = DaemonClient(server.url, client_id="alice")
        bob = DaemonClient(server.url, client_id="bob")
        alice.submit("sweep", sweep_payload(daemon_repo))
        bob.submit("sweep", sweep_payload(daemon_repo))
        assert {job["owner"] for job in alice.list_jobs()["jobs"]} == {"alice"}
        everyone = alice.list_jobs(all_owners=True)["jobs"]
        assert {job["owner"] for job in everyone} == {"alice", "bob"}

    def test_unknown_job_maps_to_404(self, server):
        client = DaemonClient(server.url, client_id="alice")
        with pytest.raises(DaemonClientError) as error:
            client.status("no-such-job")
        assert error.value.status == 404
        with pytest.raises(DaemonClientError) as error:
            client.pause("no-such-job")
        assert error.value.status == 404

    def test_illegal_state_maps_to_400(self, server, daemon_repo):
        client = DaemonClient(server.url, client_id="alice")
        job = client.submit("sweep", sweep_payload(daemon_repo))
        client.wait(job["id"], timeout=WAIT_S)
        with pytest.raises(DaemonClientError) as error:
            client.resume(job["id"])
        assert error.value.status == 400
        with pytest.raises(DaemonClientError) as error:
            client.snapshot(job["id"])
        assert error.value.status == 400

    def test_malformed_submit_maps_to_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/jobs",
            data=b"{ not json",
            method="POST",
            headers={"X-Repro-Client": "alice", "Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request, timeout=10)
        assert error.value.code == 400
        with pytest.raises(DaemonClientError) as error:
            DaemonClient(server.url).submit("mapreduce", {})
        assert error.value.status == 400

    def test_health_endpoint(self, server):
        health = DaemonClient(server.url).health()
        assert health["schema_version"] == DAEMON_SCHEMA_VERSION
        assert "cache" in health and "queue_depth" in health

    def test_unknown_route_maps_to_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"{server.url}/nope", timeout=10)
        assert error.value.code == 404


# ----------------------------------------------------------------------
# Client CLI (through the real argparse surface)
# ----------------------------------------------------------------------
class TestDaemonCli:
    def test_submit_wait_status_result(self, tmp_path, daemon_repo, capsys):
        from repro.service.cli import main

        daemon = ReplayDaemon(tmp_path / "state", workers=1)
        with DaemonServer(daemon, port=0) as server:
            args = ["--url", server.url, "--client", "alice"]
            code = main(
                ["submit", "sweep", "--repo", str(daemon_repo), *args, "--wait"]
            )
            payload = json.loads(capsys.readouterr().out)
            assert code == 0
            assert payload["state"] == "completed"

            assert main(["status", *args, payload["id"]]) == 0
            status = json.loads(capsys.readouterr().out)
            assert status["state"] == "completed"

            assert main(["result", *args, payload["id"]]) == 0
            result = json.loads(capsys.readouterr().out)
            assert result["result"]["total"] == 2

            assert main(["status", *args]) == 0
            listing = json.loads(capsys.readouterr().out)
            assert len(listing["jobs"]) == 1

    def test_client_error_is_reported(self, tmp_path, daemon_repo, capsys):
        from repro.service.cli import main

        daemon = ReplayDaemon(tmp_path / "state", workers=1)
        with DaemonServer(daemon, port=0) as server:
            code = main(
                ["result", "--url", server.url, "--client", "alice", "nojob"]
            )
            assert code == 1
            assert "404" in capsys.readouterr().err
