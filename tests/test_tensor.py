"""Unit tests for repro.torchsim.tensor."""

import numpy as np
import pytest

from repro.torchsim.device import Device
from repro.torchsim.dtypes import DType
from repro.torchsim.tensor import Tensor, reset_tensor_ids


class TestTensorBasics:
    def test_numel_and_nbytes(self):
        tensor = Tensor.empty((4, 8), dtype=DType.FLOAT32)
        assert tensor.numel == 32
        assert tensor.nbytes == 128

    def test_scalar_tensor_has_numel_one(self):
        tensor = Tensor.empty(())
        assert tensor.numel == 1
        assert tensor.ndim == 0

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            Tensor(shape=(2, -1))

    def test_size_accessor(self):
        tensor = Tensor.empty((3, 5, 7))
        assert tensor.size() == (3, 5, 7)
        assert tensor.size(1) == 5

    def test_default_device_is_cuda(self):
        assert Tensor.empty((2,)).device == Device.cuda()

    def test_int64_nbytes(self):
        tensor = Tensor.empty((10,), dtype=DType.INT64)
        assert tensor.nbytes == 80

    def test_type_string(self):
        assert Tensor.empty((1,), dtype=DType.FLOAT16).type_string() == "Tensor(float16)"


class TestTensorIdentity:
    def test_id_is_six_element_tuple(self):
        tensor = Tensor.empty((2, 3), dtype=DType.FLOAT32)
        identity = tensor.id
        assert len(identity) == 6
        tensor_id, storage_id, offset, numel, itemsize, device = identity
        assert numel == 6
        assert itemsize == 4
        assert offset == 0
        assert device == "cuda:0"

    def test_ids_are_unique(self):
        first = Tensor.empty((1,))
        second = Tensor.empty((1,))
        assert first.tensor_id != second.tensor_id
        assert first.storage_id != second.storage_id

    def test_reset_tensor_ids_restarts_counters(self):
        reset_tensor_ids()
        tensor = Tensor.empty((1,))
        assert tensor.tensor_id == 1
        assert tensor.storage_id == 1

    def test_view_shares_storage_with_new_tensor_id(self):
        base = Tensor.empty((4, 4))
        view = base.view_as_new_tensor()
        assert view.storage_id == base.storage_id
        assert view.tensor_id != base.tensor_id
        assert view.shape == base.shape


class TestTensorFactories:
    def test_randn_metadata_only_by_default(self):
        tensor = Tensor.randn((128, 128))
        assert tensor.data is None

    def test_randn_materialized_when_requested(self):
        tensor = Tensor.randn((4, 4), materialize=True)
        assert tensor.data is not None
        assert tensor.data.shape == (4, 4)

    def test_from_indices_materializes_payload(self):
        tensor = Tensor.from_indices([1, 5, 9, 2])
        assert tensor.dtype == DType.INT64
        assert tensor.shape == (4,)
        assert tensor.data is not None
        np.testing.assert_array_equal(tensor.data, np.array([1, 5, 9, 2]))

    def test_requires_grad_flag(self):
        tensor = Tensor.empty((2, 2), requires_grad=True)
        assert tensor.requires_grad
        assert tensor.grad is None
