"""Tests for the gradient tape, nn modules, optimizer and DDP wrapper."""

import pytest

from repro.torchsim import Runtime, Tensor, ExecutionGraphObserver
from repro.torchsim import nn
from repro.torchsim.autograd import AUTOGRAD_THREAD, GradientTape
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.kernel import OpCategory


class TestGradientTape:
    def test_backward_runs_entries_in_reverse(self):
        rt = Runtime("A100")
        tape = GradientTape()
        order = []
        tape.record("First", lambda r, g: order.append("first"))
        tape.record("Second", lambda r, g: order.append("second"))
        tape.backward(rt)
        assert order == ["second", "first"]

    def test_backward_clears_entries(self):
        rt = Runtime("A100")
        tape = GradientTape()
        tape.record("Step", lambda r, g: None)
        tape.backward(rt)
        assert len(tape) == 0

    def test_backward_wraps_in_evaluate_function_nodes(self):
        rt = Runtime("A100")
        observer = rt.attach_observer(ExecutionGraphObserver())
        observer.register_callback(None)
        observer.start()
        tape = GradientTape()
        tape.record("AddmmBackward0", lambda r, g: r.call("aten::relu", Tensor.empty((4,))))
        tape.backward(rt)
        observer.stop()
        wrappers = observer.trace.find_by_label("autograd::engine::evaluate_function")
        assert len(wrappers) == 1
        assert "AddmmBackward0" in wrappers[0].name
        children = observer.trace.children(wrappers[0].id)
        assert children[0].name == "aten::relu"

    def test_backward_runs_on_autograd_thread(self):
        rt = Runtime("A100")
        seen = []
        tape = GradientTape()
        tape.record("Step", lambda r, g: seen.append(rt.current_thread))
        tape.backward(rt)
        assert seen == [AUTOGRAD_THREAD]

    def test_grad_hooks_called(self):
        tape = GradientTape()
        received = []
        tape.add_grad_hook(received.append)
        parameter = Tensor.empty((4,), requires_grad=True)
        tape.grad_ready(parameter)
        assert received == [parameter]
        tape.clear_grad_hooks()
        tape.grad_ready(parameter)
        assert len(received) == 1


class TestModules:
    def test_linear_parameters(self):
        layer = nn.Linear(16, 8)
        params = layer.parameters()
        assert len(params) == 2
        assert params[0].shape == (8, 16)
        assert params[1].shape == (8,)
        assert all(p.requires_grad for p in params)

    def test_linear_without_bias(self):
        assert len(nn.Linear(16, 8, bias=False).parameters()) == 1

    def test_sequential_collects_child_parameters(self):
        model = nn.Sequential(nn.Linear(8, 8), nn.ReLU(), nn.Linear(8, 4))
        assert len(model.parameters()) == 4

    def test_forward_and_backward_populate_grads(self):
        rt = Runtime("A100")
        tape = GradientTape()
        layer = nn.Linear(16, 8)
        out = layer(rt, Tensor.empty((4, 16)), tape)
        assert out.shape == (4, 8)
        tape.backward(rt)
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_conv_bn_relu_pipeline(self):
        rt = Runtime("A100")
        tape = GradientTape()
        block = nn.Sequential(nn.Conv2d(3, 8, 3, padding=1), nn.BatchNorm2d(8), nn.ReLU())
        out = block(rt, Tensor.empty((2, 3, 16, 16)), tape)
        assert out.shape == (2, 8, 16, 16)
        tape.backward(rt)
        conv = block.layers[0]
        assert conv.weight.grad is not None

    def test_mlp_output_shape(self):
        rt = Runtime("A100")
        mlp = nn.MLP((32, 64, 16))
        out = mlp(rt, Tensor.empty((8, 32)))
        assert out.shape == (8, 16)

    def test_embedding_bag_module(self):
        rt = Runtime("A100")
        tape = GradientTape()
        bag = nn.EmbeddingBag(1000, 32)
        out = bag.forward(rt, Tensor.from_indices(range(64)), None, tape)
        assert out.shape == (64, 32)
        tape.backward(rt)
        assert bag.weight.grad is not None

    def test_parameter_bytes(self):
        layer = nn.Linear(16, 8)
        assert layer.parameter_bytes() == (16 * 8 + 8) * 4


class TestOptimizerAndDDP:
    def test_sgd_step_emits_foreach_ops(self):
        rt = Runtime("A100")
        tape = GradientTape()
        layer = nn.Linear(16, 8)
        layer(rt, Tensor.empty((4, 16)), tape)
        tape.backward(rt)
        optimizer = nn.SGD(layer.parameters(), lr=0.1)
        before = len(rt.gpu.launches)
        optimizer.step(rt)
        assert len(rt.gpu.launches) > before

    def test_sgd_without_grads_is_noop(self):
        rt = Runtime("A100")
        optimizer = nn.SGD(nn.Linear(8, 8).parameters(), lr=0.1)
        optimizer.step(rt)
        assert rt.gpu.launches == []

    def test_sgd_zero_grad_clears(self):
        layer = nn.Linear(8, 8)
        layer.weight.grad = Tensor.empty((8, 8))
        optimizer = nn.SGD(layer.parameters())
        optimizer.zero_grad()
        assert layer.weight.grad is None

    def test_ddp_issues_allreduce_during_backward(self):
        dist = DistributedContext(rank=0, world_size=8)
        rt = Runtime("A100", dist=dist)
        tape = GradientTape()
        model = nn.Sequential(nn.Linear(256, 256), nn.ReLU(), nn.Linear(256, 256))
        ddp = nn.DistributedDataParallel(model, bucket_cap_mb=0.1)
        ddp.attach(rt, tape)
        ddp(rt, Tensor.empty((32, 256)), tape)
        tape.backward(rt)
        ddp.finalize(rt)
        comm = [k for k in rt.gpu.launches if k.category == OpCategory.COMM]
        assert comm, "DDP should have launched at least one all-reduce"

    def test_ddp_without_dist_context_is_local(self):
        rt = Runtime("A100")
        tape = GradientTape()
        model = nn.Linear(64, 64)
        ddp = nn.DistributedDataParallel(model)
        ddp.attach(rt, tape)
        ddp(rt, Tensor.empty((8, 64)), tape)
        tape.backward(rt)
        ddp.finalize(rt)
        comm = [k for k in rt.gpu.launches if k.category == OpCategory.COMM]
        assert len(comm) == 1  # a single local (world-size 1) flush
