"""Tests for the ET replayer, stream assignment and communication replay."""

import pytest

from repro.core.comms_replay import CommReplayManager
from repro.core.registry import ReplaySupport
from repro.core.replayer import ReplayConfig, Replayer
from repro.core.streams import StreamAssigner
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.stream import COMM_STREAM, DEFAULT_COMPUTE_STREAM
from repro.bench.harness import capture_workload
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from tests.conftest import make_small_rm


class TestStreamAssigner:
    def test_assignment_from_profiler_trace(self, captured_runtime_pieces):
        assignment = StreamAssigner().assign(
            captured_runtime_pieces["trace"], captured_runtime_pieces["profiler_trace"]
        )
        assert assignment.op_streams
        assert set(assignment.streams_used()) >= {DEFAULT_COMPUTE_STREAM}

    def test_without_profiler_everything_default(self, captured_runtime_pieces):
        assignment = StreamAssigner().assign(captured_runtime_pieces["trace"], None)
        assert assignment.op_streams == {}
        assert assignment.stream_for(12345) == DEFAULT_COMPUTE_STREAM

    def test_comm_ops_assigned_to_comm_stream(self):
        capture = _distributed_rm_capture()
        assignment = StreamAssigner().assign(capture.execution_trace, capture.profiler_trace)
        comm_nodes = [
            node for node in capture.execution_trace.operators() if node.namespace == "c10d"
        ]
        assert comm_nodes
        assert all(assignment.stream_for(node.id) == COMM_STREAM for node in comm_nodes)


def _distributed_rm_capture(world_size=4, rank=0):
    from repro.torchsim.runtime import Runtime

    dist = DistributedContext(rank=rank, world_size=world_size)
    runtime = Runtime("A100", rank=rank, dist=dist)
    workload = make_small_rm(rank=rank, world_size=world_size)
    capture = capture_workload(workload, warmup_iterations=0, runtime=runtime)
    capture.execution_trace.metadata["world_size"] = world_size
    return capture


class TestCommReplayManager:
    def test_extract_comm_records(self):
        capture = _distributed_rm_capture()
        records = CommReplayManager.extract(capture.execution_trace)
        assert records
        names = {record.name for record in records}
        assert "c10d::all_to_all" in names
        assert all(record.bytes_per_rank > 0 for record in records)
        assert all(record.recorded_group.get("ranks") == [0, 1, 2, 3] for record in records)

    def test_summary(self):
        capture = _distributed_rm_capture()
        summary = CommReplayManager.summarize(capture.execution_trace)
        assert summary.total_bytes > 0
        assert summary.per_collective_count["c10d::all_to_all"] >= 1
        assert 4 in summary.world_sizes

    def test_map_group_identity_by_default(self):
        manager = CommReplayManager()
        recorded = {"pg_id": 0, "ranks": [0, 1, 2, 3], "backend": "nccl"}
        assert manager.map_group(recorded) == recorded

    def test_map_group_remaps_to_smaller_world(self):
        manager = CommReplayManager(remap_to_world_size=2)
        remapped = manager.map_group({"pg_id": 0, "ranks": list(range(8)), "backend": "nccl"})
        assert remapped["ranks"] == [0, 1]

    def test_ensure_groups_creates_replay_groups(self):
        capture = _distributed_rm_capture()
        dist = DistributedContext(rank=0, world_size=4)
        manager = CommReplayManager(dist)
        manager.ensure_groups(CommReplayManager.extract(capture.execution_trace))
        # The default all-rank group matches the recorded one, so no extra
        # groups beyond those recorded are needed.
        assert len(dist.groups) >= 1


class TestReplayer:
    def test_replay_reproduces_iteration_time(self, small_linear_capture):
        replayer = Replayer(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            ReplayConfig(iterations=1),
        )
        result = replayer.run()
        original = small_linear_capture.iteration_time_us
        assert result.mean_iteration_time_us == pytest.approx(original, rel=0.10)
        assert result.skipped_ops == 0
        assert result.coverage.count_coverage == pytest.approx(1.0)

    def test_replay_system_metrics_close_to_original(self, small_linear_capture):
        result = Replayer(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            ReplayConfig(),
        ).run()
        original = small_linear_capture.system_metrics
        assert result.system_metrics.sm_utilization_pct == pytest.approx(
            original.sm_utilization_pct, rel=0.15
        )
        assert result.system_metrics.hbm_bandwidth_gbps == pytest.approx(
            original.hbm_bandwidth_gbps, rel=0.15
        )

    def test_multiple_iterations_recorded(self, small_linear_capture):
        result = Replayer(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            ReplayConfig(iterations=3),
        ).run()
        assert len(result.iteration_times_us) == 3
        spread = max(result.iteration_times_us) - min(result.iteration_times_us)
        assert spread < 0.05 * result.mean_iteration_time_us

    def test_unsupported_ops_skipped_and_counted(self):
        capture = capture_workload(make_small_rm(), warmup_iterations=0)
        result = Replayer(capture.execution_trace, capture.profiler_trace, ReplayConfig()).run()
        assert result.skipped_ops > 0
        assert result.coverage.count_coverage < 1.0
        assert result.mean_iteration_time_us < capture.iteration_time_us

    def test_registering_custom_ops_improves_coverage(self, small_asr):
        capture = capture_workload(small_asr, warmup_iterations=0)
        default_result = Replayer(
            capture.execution_trace, capture.profiler_trace, ReplayConfig()
        ).run()
        support = ReplaySupport()
        support.register_library("fairseq")
        extended_result = Replayer(
            capture.execution_trace, capture.profiler_trace, ReplayConfig(), support=support
        ).run()
        assert extended_result.coverage.time_coverage > default_result.coverage.time_coverage
        assert extended_result.mean_iteration_time_us > default_result.mean_iteration_time_us

    def test_subtrace_replay_shorter_than_full(self, small_linear_capture):
        full = Replayer(
            small_linear_capture.execution_trace, small_linear_capture.profiler_trace, ReplayConfig()
        ).run()
        forward_only = Replayer(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            ReplayConfig(subtrace_label="## forward ##"),
        ).run()
        assert 0 < forward_only.mean_iteration_time_us < full.mean_iteration_time_us
        assert forward_only.replayed_ops < full.replayed_ops

    def test_category_filtered_replay(self):
        capture = _distributed_rm_capture()
        comm_only = Replayer(
            capture.execution_trace,
            capture.profiler_trace,
            ReplayConfig(categories=["comms"], world_size=4),
        ).run()
        assert comm_only.replayed_ops > 0
        assert comm_only.mean_iteration_time_us < capture.iteration_time_us
        kernels = comm_only.kernel_launches
        assert all(k.category.value == "comms" for k in kernels)

    def test_distributed_trace_replay_uses_world_size(self):
        capture = _distributed_rm_capture(world_size=4)
        result = Replayer(capture.execution_trace, capture.profiler_trace, ReplayConfig()).run()
        assert result.mean_iteration_time_us == pytest.approx(capture.iteration_time_us, rel=0.25)

    def test_profiling_can_be_disabled(self, small_linear_capture):
        result = Replayer(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            ReplayConfig(profile=False),
        ).run()
        assert result.profiler_trace is None
        assert result.mean_iteration_time_us > 0

    def test_warmup_iterations_not_measured(self, small_linear_capture):
        result = Replayer(
            small_linear_capture.execution_trace,
            small_linear_capture.profiler_trace,
            ReplayConfig(iterations=1, warmup_iterations=2),
        ).run()
        assert len(result.iteration_times_us) == 1

    def test_build_reports_reconstruction_failures(self, small_linear_capture):
        replayer = Replayer(
            small_linear_capture.execution_trace, small_linear_capture.profiler_trace, ReplayConfig()
        )
        plan = replayer.build()
        assert plan.reconstruction_failures == {}
        assert len(plan.reconstructed) == len(plan.selection.supported_entries())
