"""Property-based tests for the hardware models (cost, timeline, power, network)."""

from hypothesis import given, settings, strategies as st

from repro.hardware.costmodel import KernelCostModel
from repro.hardware.gpu import GpuTimeline
from repro.hardware.network import CollectiveCostModel
from repro.hardware.power import PowerModel
from repro.hardware.specs import A100, V100
from repro.torchsim.kernel import KernelDesc, KernelKind, KernelLaunch, OpCategory

kernel_kinds = st.sampled_from(list(KernelKind))


@st.composite
def kernel_descs(draw):
    return KernelDesc(
        name="k",
        kind=draw(kernel_kinds),
        flops=draw(st.floats(min_value=0, max_value=1e13)),
        bytes_read=draw(st.floats(min_value=0, max_value=1e10)),
        bytes_written=draw(st.floats(min_value=0, max_value=1e10)),
        occupancy=draw(st.floats(min_value=0.05, max_value=1.0)),
        locality=draw(st.floats(min_value=0.0, max_value=1.0)),
    )


class TestCostModelProperties:
    @given(kernel_descs())
    @settings(max_examples=300, deadline=None)
    def test_duration_positive_and_finite(self, desc):
        duration = KernelCostModel(A100).duration_us(desc)
        assert duration >= 1.5
        assert duration < 1e9

    @given(kernel_descs(), st.floats(min_value=0.3, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_lower_clock_never_speeds_up(self, desc, scale):
        full = KernelCostModel(A100, clock_scale=1.0).duration_us(desc)
        throttled = KernelCostModel(A100, clock_scale=scale).duration_us(desc)
        assert throttled >= full - 1e-9

    @given(kernel_descs(), st.floats(min_value=1.0, max_value=8.0))
    @settings(max_examples=200, deadline=None)
    def test_more_work_never_faster(self, desc, factor):
        model = KernelCostModel(A100)
        bigger = KernelDesc(
            name=desc.name, kind=desc.kind, flops=desc.flops * factor,
            bytes_read=desc.bytes_read * factor, bytes_written=desc.bytes_written * factor,
            occupancy=desc.occupancy, locality=desc.locality,
        )
        assert model.duration_us(bigger) >= model.duration_us(desc) - 1e-9

    @given(kernel_descs())
    @settings(max_examples=200, deadline=None)
    def test_roofline_never_faster_than_flops_only_model(self, desc):
        roofline = KernelCostModel(A100, mode="roofline").duration_us(desc)
        flops_only = KernelCostModel(A100, mode="flops").duration_us(desc)
        assert roofline >= flops_only - 1e-9


class TestTimelineProperties:
    @given(st.lists(
        st.tuples(
            st.sampled_from([7, 20, 22]),
            st.floats(min_value=0, max_value=1000),     # launch ts
            st.floats(min_value=1, max_value=500),      # duration
        ),
        min_size=1, max_size=40,
    ))
    @settings(max_examples=200, deadline=None)
    def test_stream_ordering_and_busy_time_invariants(self, launches):
        timeline = GpuTimeline()
        resolved = []
        # Launch timestamps must be non-decreasing like a real CPU clock.
        current_ts = 0.0
        for stream, ts_increment, duration in launches:
            current_ts += ts_increment / 10.0
            desc = KernelDesc(name="k", kind=KernelKind.ELEMENTWISE, bytes_read=1e6, bytes_written=1e6)
            resolved.append(
                timeline.add_launch(
                    KernelLaunch(desc=desc, stream_id=stream, launch_ts=current_ts,
                                 duration=duration, op_node_id=0, op_name="op",
                                 category=OpCategory.ATEN)
                )
            )
        # Invariant 1: kernels never start before their launch timestamp.
        assert all(k.start >= k.launch_ts for k in resolved)
        # Invariant 2: per-stream issue order is preserved without overlap.
        per_stream = {}
        for kernel in resolved:
            per_stream.setdefault(kernel.stream_id, []).append(kernel)
        for kernels in per_stream.values():
            for earlier, later in zip(kernels, kernels[1:]):
                assert later.start >= earlier.end - 1e-9
        # Invariant 3: busy time <= wall time and <= total kernel time.
        stats = timeline.stats()
        assert stats.busy_time_us <= stats.wall_time_us + 1e-6
        assert stats.busy_time_us <= stats.total_kernel_time_us + 1e-6
        # Invariant 4: exposed time per category never exceeds its kernel time.
        for category, exposed in stats.category_exposed_time_us.items():
            assert exposed <= stats.category_kernel_time_us[category] + 1e-6
        # Invariant 5: utilisation bounded.
        assert 0.0 <= stats.sm_utilization <= 1.0


class TestPowerModelProperties:
    @given(st.floats(min_value=100.0, max_value=400.0),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=300, deadline=None)
    def test_power_bounded_by_idle_and_limit(self, limit, busy, utilization):
        model = PowerModel(A100, power_limit_w=limit)
        power = model.average_power_w(busy, utilization)
        assert A100.idle_power_w - 1e-9 <= power <= limit + 1e-9

    @given(st.floats(min_value=100.0, max_value=400.0))
    @settings(max_examples=100, deadline=None)
    def test_clock_scale_in_unit_interval(self, limit):
        assert 0.0 < PowerModel(A100, power_limit_w=limit).clock_scale <= 1.0

    @given(st.floats(min_value=100.0, max_value=299.0), st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_higher_cap_never_lowers_clock(self, limit, _unused):
        low = PowerModel(V100, power_limit_w=limit).clock_scale
        high = PowerModel(V100, power_limit_w=min(limit + 50.0, V100.tdp_w)).clock_scale
        assert high >= low - 1e-9


class TestCollectiveModelProperties:
    collectives = st.sampled_from(["all_reduce", "all_to_all", "all_gather", "reduce_scatter", "broadcast"])

    @given(collectives, st.floats(min_value=1e3, max_value=1e9), st.integers(min_value=2, max_value=256))
    @settings(max_examples=300, deadline=None)
    def test_duration_positive_and_monotone_in_bytes(self, op, payload, world_size):
        model = CollectiveCostModel()
        small = model.collective_us(op, payload, world_size)
        large = model.collective_us(op, payload * 4, world_size)
        assert small > 0
        assert large >= small - 1e-9

    @given(collectives, st.floats(min_value=1e5, max_value=1e8))
    @settings(max_examples=100, deadline=None)
    def test_crossing_node_boundary_not_faster(self, op, payload):
        model = CollectiveCostModel()
        within = model.collective_us(op, payload, 8)
        across = model.collective_us(op, payload, 16)
        assert across >= within - 1e-9
