"""Schema tests for the daemon payload builders (repro.service.serialize).

The daemon's REST API and the client CLI both speak these payloads, and
scripts parse them — so each shape is pinned here key-for-key: renaming
or removing a key must fail a test, and every daemon payload must carry
the daemon schema version and survive a JSON round-trip unchanged.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.daemon import DAEMON_SCHEMA_VERSION, JobRecord, JobSpec
from repro.daemon.jobs import cluster_snapshot, sweep_snapshot
from repro.service import serialize

#: The pinned key sets — the CLI/REST contract.
JOB_KEYS = {
    "schema_version", "id", "owner", "kind", "state", "priority", "seq",
    "error", "error_type", "traceback", "has_result", "has_snapshot",
}
RESULT_KEYS = {"schema_version", "id", "kind", "result"}
SNAPSHOT_KEYS = {"schema_version", "id", "kind", "state", "snapshot"}
BATCH_JOB_KEYS = {
    "label", "trace", "device", "cached", "error", "error_type", "traceback",
    "summary",
}
SWEEP_SNAPSHOT_KEYS = {
    "schema_version", "kind", "completed", "pending_label", "checkpoint"
}
CLUSTER_SNAPSHOT_KEYS = {"schema_version", "kind", "completed_steps"}


def roundtrip(payload):
    """Serialize exactly the way the daemon/CLI does, then parse back."""
    return json.loads(serialize.dumps(payload))


def make_record(**overrides) -> JobRecord:
    fields = dict(
        id="abc123def456",
        owner="alice",
        spec=JobSpec("sweep", {"repo": "traces/"}),
        priority=2,
        state="completed",
        seq=5,
        result={"kind": "sweep", "points": [], "total": 0, "cached": 0, "replayed": 0},
    )
    fields.update(overrides)
    return JobRecord(**fields)


class TestJobPayload:
    def test_exact_key_set_and_version(self):
        payload = serialize.job_payload(make_record())
        assert set(payload) == JOB_KEYS
        assert payload["schema_version"] == DAEMON_SCHEMA_VERSION

    def test_round_trip_is_stable(self):
        payload = serialize.job_payload(make_record())
        assert roundtrip(payload) == payload
        assert roundtrip(roundtrip(payload)) == roundtrip(payload)

    def test_presence_flags(self):
        done = serialize.job_payload(make_record())
        assert done["has_result"] is True and done["has_snapshot"] is False
        paused = serialize.job_payload(
            make_record(state="paused", result=None, snapshot=sweep_snapshot({}, None, None))
        )
        assert paused["has_result"] is False and paused["has_snapshot"] is True

    def test_error_details_ride_along(self):
        failed = serialize.job_payload(
            make_record(
                state="failed", result=None,
                error="boom", error_type="ValueError", traceback="Traceback ...",
            )
        )
        assert failed["error"] == "boom"
        assert failed["error_type"] == "ValueError"
        assert failed["traceback"].startswith("Traceback")


class TestJobListPayload:
    def test_shape_and_order(self):
        records = [make_record(id="b", seq=2), make_record(id="a", seq=1)]
        payload = serialize.job_list_payload(records)
        assert set(payload) == {"schema_version", "jobs"}
        assert payload["schema_version"] == DAEMON_SCHEMA_VERSION
        assert [job["id"] for job in payload["jobs"]] == ["b", "a"]  # caller's order
        assert all(set(job) == JOB_KEYS for job in payload["jobs"])
        assert roundtrip(payload) == payload


class TestResultAndSnapshotPayloads:
    def test_result_payload(self):
        record = make_record()
        payload = serialize.job_result_payload(record)
        assert set(payload) == RESULT_KEYS
        assert payload["schema_version"] == DAEMON_SCHEMA_VERSION
        assert payload["result"] == record.result
        assert roundtrip(payload) == payload

    def test_sweep_snapshot_payload(self):
        snapshot = sweep_snapshot(
            {"rm@A100": {"cache_key": "k", "summary": {}, "cached": False}},
            "rm@V100",
            {"schema_version": 1, "completed_iterations": 3},
        )
        assert set(snapshot) == SWEEP_SNAPSHOT_KEYS
        record = make_record(state="paused", result=None, snapshot=snapshot)
        payload = serialize.snapshot_payload(record)
        assert set(payload) == SNAPSHOT_KEYS
        assert payload["snapshot"] == snapshot
        assert roundtrip(payload) == payload

    def test_cluster_snapshot_payload(self):
        snapshot = cluster_snapshot(17)
        assert set(snapshot) == CLUSTER_SNAPSHOT_KEYS
        assert snapshot["completed_steps"] == 17
        record = make_record(
            spec=JobSpec("cluster", {"trace_dir": "fleet/"}),
            state="paused", result=None, snapshot=snapshot,
        )
        payload = serialize.snapshot_payload(record)
        assert payload["kind"] == "cluster"
        assert roundtrip(payload) == payload


#: The pinned /health key set (what a live daemon's health() serves).
HEALTH_KEYS = {
    "schema_version", "version", "jobs", "jobs_by_state", "uptime_s",
    "queue_depth", "queue_by_owner", "workers", "cache", "telemetry",
}


class TestHealthPayload:
    def test_passthrough_and_version(self):
        health = {
            "schema_version": DAEMON_SCHEMA_VERSION,
            "version": "1.0",
            "jobs": {"completed": 2},
            "jobs_by_state": {"queued": 0, "running": 0, "pausing": 0,
                              "paused": 0, "completed": 2, "failed": 0,
                              "cancelled": 0},
            "uptime_s": 12.5,
            "queue_depth": 0,
            "queue_by_owner": {},
            "workers": 2,
            "cache": {"entries": 2},
            "telemetry": {"repro_jobs_submitted_total": 2.0},
        }
        assert set(health) == HEALTH_KEYS
        payload = serialize.daemon_health_payload(health)
        assert payload == health
        assert roundtrip(payload) == payload

    def test_live_daemon_health_matches_pinned_keys(self, tmp_path):
        """The real ReplayDaemon.health() serves exactly the pinned shape,
        with jobs_by_state zero-filled over every job state."""
        from repro.daemon import ReplayDaemon
        from repro.daemon.jobs import JOB_STATES

        daemon = ReplayDaemon(tmp_path / "state", workers=1)
        health = daemon.health()
        assert set(health) == HEALTH_KEYS
        assert set(health["jobs_by_state"]) == set(JOB_STATES)
        assert all(count == 0 for count in health["jobs_by_state"].values())
        assert health["uptime_s"] >= 0.0
        assert health["telemetry"]["repro_jobs_submitted_total"] == 0.0
        assert roundtrip(serialize.daemon_health_payload(health)) == health


class TestTelemetryPayloads:
    def test_metrics_payload_is_versioned_and_round_trips(self):
        from repro.telemetry import METRICS_SCHEMA_VERSION, MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs").inc(3)
        registry.gauge("depth", "queue depth").set(2)
        registry.histogram("latency_seconds", "latency").observe(0.2)
        payload = serialize.metrics_payload(registry)
        assert set(payload) == {
            "schema_version", "counters", "gauges", "histograms"
        }
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION
        assert payload["counters"]["jobs_total"] == 3.0
        assert roundtrip(payload) == payload

    def test_trace_payload_is_versioned_and_round_trips(self):
        from repro.telemetry import TELEMETRY_SCHEMA_VERSION, Tracer

        tracer = Tracer()
        with tracer.span("work", "daemon"):
            pass
        tracer.event("mark", "daemon", virtual_us=5.0)
        payload = serialize.telemetry_trace_payload(tracer)
        assert set(payload) == {
            "schema_version", "span_count", "event_count", "dropped",
            "spans", "events",
        }
        assert payload["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert payload["span_count"] == 1 and payload["event_count"] == 1
        assert roundtrip(payload) == payload


class TestBatchPayloadErrorKeys:
    """Satellite: BatchReplayer failures surface type + traceback in
    ``--json`` output, not just the message."""

    class _FakeBatch(list):
        """Just enough of BatchResult's surface for batch_payload."""

        replayed_count = 0
        cached_count = 0

        @property
        def error_count(self):
            return len(self)

    def _batch(self, rows):
        return self._FakeBatch(
            SimpleNamespace(
                job=SimpleNamespace(
                    label=row["label"],
                    trace_name="t",
                    config=SimpleNamespace(device="A100"),
                ),
                cached=False,
                error=row.get("error"),
                error_type=row.get("error_type"),
                traceback=row.get("traceback"),
                summary=None,
            )
            for row in rows
        )

    def test_rows_carry_error_type_and_traceback(self):
        batch = self._batch(
            [{"label": "bad@A100", "error": "boom", "error_type": "KeyError",
              "traceback": "Traceback (most recent call last): ..."}]
        )
        payload = serialize.batch_payload(batch)
        (row,) = payload["jobs"]
        assert set(row) == BATCH_JOB_KEYS
        assert row["error_type"] == "KeyError"
        assert "Traceback" in row["traceback"]

    def test_real_failed_batch_round_trips(self, tmp_path):
        """End-to-end: a genuinely failing job's payload carries the real
        exception class and frames through JSON."""
        from repro.service.batch import BatchReplayer, ReplayJob
        from repro.core.replayer import ReplayConfig

        job = ReplayJob(
            label="missing@NoSuchDevice",
            trace_name="missing",
            trace_path=tmp_path / "missing.json",
            trace_digest="0" * 64,
            config=ReplayConfig(device="NoSuchDevice"),
        )
        batch = BatchReplayer(backend="serial").run([job])
        payload = roundtrip(serialize.batch_payload(batch))
        (row,) = payload["jobs"]
        assert row["error"]
        assert row["error_type"]
        assert row["traceback"] and "Traceback" in row["traceback"]
        assert payload["failed"] == 1
