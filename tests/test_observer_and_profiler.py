"""Tests for the ExecutionGraphObserver and the profiler trace."""

import pytest

from repro.et.schema import ROOT_NODE_ID
from repro.et.trace import ExecutionTrace
from repro.torchsim import Runtime, Tensor, ExecutionGraphObserver, Profiler
from repro.torchsim.profiler import ProfilerTrace, TraceEvent
from repro.torchsim.stream import COMM_STREAM, DEFAULT_COMPUTE_STREAM


class TestExecutionGraphObserver:
    def test_start_creates_root_node(self):
        observer = ExecutionGraphObserver()
        observer.register_callback(None)
        observer.start()
        assert observer.trace is not None
        assert observer.trace.get(ROOT_NODE_ID).parent == 0

    def test_capture_of_single_iteration(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        names = [node.name for node in trace.operators()]
        assert "aten::linear" in names
        assert "aten::mse_loss" in names
        assert any(name.startswith("aten::_foreach") for name in names)

    def test_parent_child_nesting_recorded(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        linear_nodes = trace.find_by_name("aten::linear")
        assert linear_nodes
        child_names = {child.name for child in trace.children(linear_nodes[0].id)}
        assert "aten::t" in child_names
        assert "aten::addmm" in child_names

    def test_node_ids_increase_in_execution_order(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        ids = [node.id for node in trace.sorted_nodes()]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_table2_schema_fields_present(self, captured_runtime_pieces):
        node = captured_runtime_pieces["trace"].find_by_name("aten::addmm")[0]
        data = node.to_dict()
        for key in ("name", "id", "parent", "op_schema", "inputs", "input_shapes",
                    "input_types", "outputs", "output_shapes", "output_types"):
            assert key in data
        assert len(node.inputs) == len(node.input_shapes) == len(node.input_types)

    def test_tensor_args_have_shapes_nontensor_args_empty(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        node = trace.find_by_name("aten::mse_loss")[0]
        assert node.input_shapes[0]  # tensor input has a shape
        dropout_like = trace.find_by_name("aten::addmm")[0]
        assert dropout_like.op_schema.startswith("aten::addmm")

    def test_stop_writes_json_file(self, tmp_path):
        rt = Runtime("A100")
        observer = rt.attach_observer(ExecutionGraphObserver())
        path = tmp_path / "et.json"
        observer.register_callback(path)
        observer.start()
        rt.call("aten::relu", Tensor.empty((8,)))
        observer.stop()
        assert path.exists()
        assert len(ExecutionTrace.load(path)) >= 2

    def test_autograd_wrappers_have_no_schema(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        wrappers = trace.find_by_label("autograd::engine::evaluate_function")
        assert wrappers
        assert all(not node.is_operator for node in wrappers)

    def test_backward_ops_on_autograd_thread(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        wrappers = trace.find_by_label("autograd::engine::evaluate_function")
        assert all(node.attrs.get("tid") == "autograd" for node in wrappers)


class TestProfilerTrace:
    def test_cpu_ops_and_kernels_separated(self, captured_runtime_pieces):
        ptrace = captured_runtime_pieces["profiler_trace"]
        assert ptrace.cpu_ops()
        assert ptrace.kernels()
        assert ptrace.annotations()

    def test_two_cpu_threads_present(self, captured_runtime_pieces):
        ptrace = captured_runtime_pieces["profiler_trace"]
        assert set(ptrace.threads()) == {"main", "autograd"}

    def test_kernels_linked_to_ops(self, captured_runtime_pieces):
        ptrace = captured_runtime_pieces["profiler_trace"]
        op_ids = {event.op_node_id for event in ptrace.cpu_ops()}
        trace = captured_runtime_pieces["trace"]
        for kernel in ptrace.kernels():
            # Every kernel's launching op is either a recorded cpu op or a
            # child of one (nested composite operators).
            assert kernel.op_node_id in op_ids or trace.has(kernel.op_node_id)

    def test_op_stream_map(self, captured_runtime_pieces):
        ptrace = captured_runtime_pieces["profiler_trace"]
        stream_map = ptrace.op_stream_map()
        assert stream_map
        assert all(DEFAULT_COMPUTE_STREAM in streams for streams in stream_map.values())

    def test_window_and_wall_time(self, captured_runtime_pieces):
        ptrace = captured_runtime_pieces["profiler_trace"]
        start, end = ptrace.window()
        assert end > start
        assert ptrace.wall_time_us() == pytest.approx(end - start)

    def test_total_cpu_time_excludes_nested_spans(self):
        trace = ProfilerTrace()
        trace.add(TraceEvent(name="parent", cat="cpu_op", ts=0.0, dur=10.0, tid="main", op_node_id=1))
        trace.add(TraceEvent(name="child", cat="cpu_op", ts=2.0, dur=3.0, tid="main", op_node_id=2))
        assert trace.total_cpu_time_us() == pytest.approx(10.0)

    def test_serialization_round_trip(self, captured_runtime_pieces, tmp_path):
        ptrace = captured_runtime_pieces["profiler_trace"]
        path = ptrace.save(tmp_path / "profiler.json")
        restored = ProfilerTrace.load(path)
        assert len(restored.events) == len(ptrace.events)
        assert restored.kernels()[0].stream == ptrace.kernels()[0].stream

    def test_chrome_trace_export(self, captured_runtime_pieces):
        chrome = captured_runtime_pieces["profiler_trace"].to_chrome_trace()
        assert "traceEvents" in chrome
        assert all(event["ph"] == "X" for event in chrome["traceEvents"])

    def test_profiler_respects_activity_filter(self):
        rt = Runtime("A100")
        profiler = rt.attach_profiler(Profiler(activities=["cpu"]))
        with profiler:
            rt.call("aten::relu", Tensor.empty((1024,)))
        assert profiler.trace.cpu_ops()
        assert not profiler.trace.kernels()

    def test_on_trace_ready_callback(self):
        received = []
        profiler = Profiler(on_trace_ready=received.append)
        profiler.start()
        profiler.stop()
        assert received == [profiler.trace]
