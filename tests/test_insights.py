"""Tests for repro.insights (critical path, diffing, regression watchdog).

Covers the subsystem's acceptance scenarios:

* critical-path analysis of a 4-rank DDP-RM fleet with rank 0 on a
  slower device names the straggler rank and its dominant collective
  deterministically (pinned below);
* a synthetic A/B diff attributes >= 95% of an injected comms slowdown
  to the perturbed op class;
* the regression watchdog passes on the repository's own BENCH file and
  exits non-zero on a seeded drop;

plus the satellites that ride along: structured JSON-lines logging with
tracer correlation, the daemon's ``GET /jobs/<id>/analysis`` route, and
the serializer-bypass lint rule.
"""

from __future__ import annotations

import io
import json
import logging
import sys
import urllib.request
from pathlib import Path

import pytest

import repro.api as api
from repro.bench.harness import capture_workload
from repro.daemon import ReplayDaemon
from repro.daemon.jobs import DAEMON_SCHEMA_VERSION, JobSpec
from repro.daemon.server import DaemonServer
from repro.insights import (
    INSIGHTS_SCHEMA_VERSION,
    RunProfile,
    TrajectoryStore,
    analyze_critical_path,
    analyze_job_result,
    check_regressions,
    collective_name,
    diff_runs,
    format_critical_path,
    format_diff,
    format_regressions,
)
from repro.service import TraceRepository
from repro.telemetry import Tracer, get_logger
from repro.workloads.ddp import DistributedRunner
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from tests.conftest import make_small_rm

WAIT_S = 120.0
WORLD_SIZE = 4


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_captures():
    """One capture per rank from a 4-rank DDP-RM run."""
    runner = DistributedRunner(
        lambda rank, world: make_small_rm(rank=rank, world_size=world),
        world_size=WORLD_SIZE,
    )
    return runner.run()


def _run_fleet(captures, straggle: bool):
    session = (
        api.replay_cluster(captures)
        .on("A100")
        .iterations(2, warmup=1)
        .with_telemetry()
    )
    if straggle:
        session.configure_rank(0, device="V100")
    session.run()
    return session


@pytest.fixture(scope="module")
def symmetric_session(fleet_captures):
    return _run_fleet(fleet_captures, straggle=False)


@pytest.fixture(scope="module")
def straggler_session(fleet_captures):
    return _run_fleet(fleet_captures, straggle=True)


# ----------------------------------------------------------------------
# Critical-path attribution
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_symmetric_fleet_flags_no_straggler(self, symmetric_session):
        report = symmetric_session.analyze()
        assert report.world_size == WORLD_SIZE
        assert report.stragglers == []
        assert all(not r.is_straggler for r in report.ranks)
        assert all(r.stall_us == 0.0 for r in report.ranks)
        assert all(r.drag_us == 0.0 for r in report.ranks)
        # Identical ranks: the slowest-by-iteration tie-break is rank 0.
        assert report.straggler_rank == 0
        assert report.source == "cluster-report+trace"

    def test_straggler_fleet_names_rank_and_collective(self, straggler_session):
        """The acceptance pin: rank 0 (on a V100) drags a 4-rank A100
        fleet, and all_reduce is the collective its lane exposes most."""
        report = straggler_session.analyze()
        assert report.straggler_rank == 0
        assert report.stragglers == [0]
        assert report.dominant_collective == "all_reduce"
        assert report.dominant_ops[0].name == "aten::mm"
        assert report.dominant_ops[0].category == "compute"

    def test_straggler_signature_is_stall_asymmetry(self, straggler_session):
        """Collectives synchronize iteration times, so the slow rank shows
        up as the only one the others stall for — not as a longer bar."""
        report = straggler_session.analyze()
        slow = report.rank_path(0)
        fast = [report.rank_path(r) for r in range(1, WORLD_SIZE)]
        iterations = {round(r.iteration_us, 3) for r in report.ranks}
        assert len(iterations) == 1  # rendezvous equalized the fleet
        assert slow.stall_us == 0.0
        assert all(r.stall_us > 0.0 for r in fast)
        assert slow.drag_us > 0.0
        assert all(r.drag_us < 0.0 for r in fast)

    def test_overlap_scores_and_shares_are_bounded(self, straggler_session):
        report = straggler_session.analyze()
        for row in report.ranks:
            assert 0.0 <= row.overlap_score <= 1.0
            assert 0.0 < row.critical_share_pct <= 100.0 + 1e-9
        for coll in report.collectives:
            assert coll.visible_us == coll.exposed_us + coll.stall_us
            assert coll.count > 0

    def test_analysis_is_deterministic_and_payload_driven(
        self, straggler_session
    ):
        """Re-analyzing the stored dict payloads gives the identical
        report — the daemon analyzes job results exactly this way."""
        live = straggler_session.analyze()
        replayed = analyze_critical_path(
            straggler_session._last_report.to_dict(),
            trace=straggler_session.tracer.to_dict(),
        )
        assert live.to_dict() == replayed.to_dict()

    def test_to_dict_schema(self, straggler_session):
        payload = straggler_session.analyze().to_dict()
        assert payload["schema_version"] == INSIGHTS_SCHEMA_VERSION
        assert payload["kind"] == "critical-path"
        assert {r["rank"] for r in payload["ranks"]} == set(range(WORLD_SIZE))
        assert payload["stragglers"] == [0]
        assert payload["dominant_collective"] == "all_reduce"

    def test_format_critical_path_renders(self, straggler_session):
        report = straggler_session.analyze()
        text = format_critical_path(report)
        assert "straggler rank: 0" in text
        assert "dominant collective: all_reduce" in text
        assert "aten::mm" in text

    def test_collective_name_normalization(self):
        assert collective_name("c10d::all_reduce") == "all_reduce"
        assert collective_name("stall:c10d::all_to_all") == "all_to_all"
        assert collective_name("all_gather") == "all_gather"

    def test_analyze_without_run_raises(self, fleet_captures):
        session = api.replay_cluster(fleet_captures)
        with pytest.raises(RuntimeError, match="call .run"):
            session.analyze()


class TestReplaySessionAnalyze:
    def test_single_rank_analysis(self):
        capture = capture_workload(make_small_rm(), warmup_iterations=0)
        session = api.replay(capture).on("A100").iterations(2)
        with pytest.raises(RuntimeError, match="call .run"):
            session.analyze()
        session.run()
        report = session.analyze()
        assert report.source == "replay-result"
        assert report.world_size == 1
        assert report.device == "A100"
        assert len(report.ranks) == 1
        assert report.ranks[0].critical_share_pct == 100.0
        assert report.dominant_ops, "kernel launches should rank ops"
        # A single-rank (world 1) workload runs no collectives.
        assert report.dominant_collective is None
        assert report.collectives == []

    def test_single_rank_of_a_fleet_sees_collectives(self, fleet_captures):
        session = api.replay(fleet_captures[0]).on("A100").iterations(2)
        session.run()
        report = session.analyze()
        assert report.source == "replay-result"
        assert report.dominant_collective in ("all_reduce", "all_to_all")
        assert report.collectives
        total_exposed = sum(c.exposed_us for c in report.collectives)
        assert total_exposed == pytest.approx(
            report.ranks[0].exposed_comm_us, rel=1e-6
        )


# ----------------------------------------------------------------------
# Run-to-run diffing
# ----------------------------------------------------------------------
def _synthetic_trace(comm_scale: float = 1.0) -> Tracer:
    """Two ranks, two iterations: fixed compute, scalable all_to_all."""
    tracer = Tracer()
    cursor = 0.0
    for _ in range(2):
        for rank in (0, 1):
            tracer.slice(rank, "aten::mm", "compute", cursor, 100.0)
            tracer.slice(
                rank, "c10d::all_to_all", "comms", cursor + 100.0,
                50.0 * comm_scale,
            )
            tracer.slice(
                rank, "c10d::all_to_all", "exposed-comms", cursor + 100.0,
                50.0 * comm_scale,
            )
        cursor += 100.0 + 50.0 * comm_scale
    return tracer


class TestDiff:
    def test_injected_comms_slowdown_is_attributed(self):
        """Acceptance: >= 95% of a synthetic 5x all_to_all slowdown lands
        on the perturbed op class, in every dimension that sees it."""
        baseline = RunProfile.from_trace(_synthetic_trace(1.0), label="a")
        current = RunProfile.from_trace(_synthetic_trace(5.0), label="b")
        report = diff_runs(baseline, current)
        assert report.regressed
        assert report.delta_us > 0
        top_op = report.by_op[0]
        assert top_op.key == "c10d::all_to_all"
        assert top_op.share_pct >= 95.0
        by_category = {e.key: e for e in report.by_category}
        comms_share = (
            by_category["comms"].share_pct
            + by_category["exposed-comms"].share_pct
        )
        assert comms_share >= 95.0
        assert by_category.get("compute", None) is None or (
            abs(by_category["compute"].share_pct) <= 5.0
        )

    def test_identical_runs_do_not_regress(self):
        profile = RunProfile.from_trace(_synthetic_trace(1.0), label="a")
        report = diff_runs(profile, profile)
        assert report.delta_us == 0.0
        assert report.delta_pct == 0.0
        assert not report.regressed
        assert all(e.delta == 0.0 for e in report.by_op)

    def test_diff_payload_schema(self):
        baseline = RunProfile.from_trace(_synthetic_trace(1.0), label="a")
        current = RunProfile.from_trace(_synthetic_trace(5.0), label="b")
        payload = diff_runs(baseline, current).to_dict()
        assert payload["schema_version"] == INSIGHTS_SCHEMA_VERSION
        assert payload["kind"] == "diff"
        assert payload["regressed"] is True
        assert payload["baseline"] == "a" and payload["current"] == "b"
        text = format_diff(diff_runs(baseline, current))
        assert "REGRESSED" in text

    def test_profile_from_cluster_report(self, straggler_session):
        report = straggler_session._last_report
        profile = RunProfile.from_cluster_report(report)
        assert profile.source == "cluster-report"
        assert profile.end_to_end_us == report.critical_path_us
        assert set(profile.by_rank_us) == {str(r) for r in range(WORLD_SIZE)}
        assert profile.by_category_us["stall"] > 0.0

    def test_from_any_sniffs_artifact_kinds(self, straggler_session):
        assert (
            RunProfile.from_any(straggler_session.tracer.to_dict()).source
            == "trace"
        )
        assert (
            RunProfile.from_any(straggler_session._last_report).source
            == "cluster-report"
        )
        wrapped = {
            "kind": "cluster",
            "report": straggler_session._last_report.to_dict(),
        }
        assert RunProfile.from_any(wrapped).source == "cluster-report"
        with pytest.raises(ValueError, match="cannot build a RunProfile"):
            RunProfile.from_any({"what": "ever"})


# ----------------------------------------------------------------------
# Regression watchdog
# ----------------------------------------------------------------------
REPO_ROOT = Path(__file__).resolve().parent.parent


def _repo_bench() -> dict:
    return json.loads((REPO_ROOT / "BENCH_replay_throughput.json").read_text())


class TestRegressionWatchdog:
    def test_repo_bench_file_passes(self):
        report = check_regressions(_repo_bench())
        assert report.ok, [c.to_dict() for c in report.regressions]
        assert not any(c.status == "regression" for c in report.checks)

    def test_seeded_drop_fails_on_hard_floor(self):
        bench = _repo_bench()
        bench["workloads"]["rm"]["speedup"] = 1.5  # contract floor is 10x
        report = check_regressions(bench)
        assert not report.ok
        assert [c.metric for c in report.regressions] == [
            "workloads.rm.speedup"
        ]
        assert "below hard floor" in report.regressions[0].detail

    def test_relative_drop_vs_history_median(self):
        history = [
            {"workloads": {"rm": {"vectorized_ops_per_sec": v}}}
            for v in (90.0, 100.0, 110.0)
        ]
        fast = {"workloads": {"rm": {"vectorized_ops_per_sec": 80.0}}}
        slow = {"workloads": {"rm": {"vectorized_ops_per_sec": 50.0}}}
        assert check_regressions(fast, history=history).ok
        report = check_regressions(slow, history=history)
        failed = {c.metric for c in report.regressions}
        assert failed == {"workloads.rm.vectorized_ops_per_sec"}
        assert "vs history median 100.000" in report.regressions[0].detail

    def test_overhead_checks_absolute_ceiling_only(self):
        # Overheads sit at the noise floor: a jump from 0.1% to 2% is not
        # a regression, but crossing the hard 5% ceiling is.
        history = [{"telemetry_overhead": {"overhead_pct": 0.1}}]
        noisy = {"telemetry_overhead": {"overhead_pct": 2.0}}
        assert check_regressions(noisy, history=history).ok
        over = {"telemetry_overhead": {"overhead_pct": 7.5}}
        report = check_regressions(over, history=history)
        assert [c.metric for c in report.regressions] == [
            "telemetry_overhead.overhead_pct"
        ]

    def test_missing_metrics_do_not_fail(self):
        report = check_regressions({})
        assert report.ok
        assert all(c.status == "missing" for c in report.checks)
        payload = report.to_dict()
        assert payload["schema_version"] == INSIGHTS_SCHEMA_VERSION
        assert payload["kind"] == "regressions"
        assert payload["ok"] is True
        assert "OK" in format_regressions(report)

    def test_trajectory_store_round_trip(self, tmp_path):
        store = TrajectoryStore(tmp_path / "history.jsonl")
        assert store.entries() == []
        store.append({"workloads": {"rm": {"speedup": 30.0}}})
        store.append({"workloads": {"rm": {"speedup": 31.0}}}, meta={"ci": True})
        entries = store.entries()
        assert [e["seq"] for e in entries] == [1, 2]
        assert entries[1]["meta"] == {"ci": True}
        assert [h["workloads"]["rm"]["speedup"] for h in store.history()] == [
            30.0,
            31.0,
        ]

    def test_trajectory_store_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        store = TrajectoryStore(path)
        store.append({"workloads": {}})
        with path.open("a") as handle:
            handle.write("{ truncated mid-write\n")
            handle.write("\n")
        store.append({"workloads": {}})
        assert [e["seq"] for e in store.entries()] == [1, 2]


# ----------------------------------------------------------------------
# CLI surface (through the real argparse entry point)
# ----------------------------------------------------------------------
class TestAnalyzeCli:
    def test_critical_path_json(self, tmp_path, fleet_captures, capsys):
        from repro.service.cli import main

        fleet_dir = tmp_path / "fleet"
        DistributedRunner.save_captures(fleet_captures, fleet_dir)
        code = main(
            [
                "analyze",
                "critical-path",
                str(fleet_dir),
                "--iterations",
                "2",
                "--warmup",
                "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "critical-path"
        assert payload["schema_version"] == INSIGHTS_SCHEMA_VERSION
        assert payload["world_size"] == WORLD_SIZE
        # Homogeneous on-disk fleet: nobody flagged, tie-break names rank 0.
        assert payload["straggler_rank"] == 0
        assert payload["stragglers"] == []
        assert payload["dominant_collective"] == "all_reduce"

    def test_critical_path_bad_dir_is_an_error(self, tmp_path, capsys):
        from repro.service.cli import main

        code = main(["analyze", "critical-path", str(tmp_path / "missing")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_diff_json(self, tmp_path, capsys):
        from repro.service.cli import main

        baseline = tmp_path / "a.json"
        current = tmp_path / "b.json"
        baseline.write_text(json.dumps(_synthetic_trace(1.0).to_dict()))
        current.write_text(json.dumps(_synthetic_trace(5.0).to_dict()))
        code = main(
            ["analyze", "diff", str(baseline), str(current), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "diff"
        assert payload["regressed"] is True
        assert payload["by_op"][0]["key"] == "c10d::all_to_all"
        assert payload["by_op"][0]["share_pct"] >= 95.0

    def test_regressions_pass_and_record(self, tmp_path, capsys):
        from repro.service.cli import main

        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(_repo_bench()))
        history = tmp_path / "history.jsonl"
        args = [
            "analyze",
            "regressions",
            "--bench",
            str(bench),
            "--history",
            str(history),
        ]
        assert main([*args, "--record", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["history_entries"] == 0  # checked before recording
        assert len(TrajectoryStore(history).entries()) == 1

        assert main([*args, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["history_entries"] == 1

    def test_regressions_exit_nonzero_on_seeded_drop(self, tmp_path, capsys):
        from repro.service.cli import main

        seeded = _repo_bench()
        seeded["workloads"]["ddp_rm"]["speedup"] = 0.5
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(seeded))
        code = main(
            [
                "analyze",
                "regressions",
                "--bench",
                str(bench),
                "--history",
                str(tmp_path / "history.jsonl"),
            ]
        )
        assert code == 1
        assert "REGRESSIONS" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Daemon integration: stored-result analysis + the HTTP route
# ----------------------------------------------------------------------
class TestJobAnalysis:
    def test_cluster_job_result(self, straggler_session):
        result = {
            "kind": "cluster",
            "report": straggler_session._last_report.to_dict(),
        }
        analysis = analyze_job_result(result)
        assert analysis["kind"] == "critical-path"
        assert analysis["straggler_rank"] == 0

    def test_cluster_without_report_raises(self):
        with pytest.raises(ValueError, match="no report"):
            analyze_job_result({"kind": "cluster"})

    def test_sweep_job_result(self):
        result = {
            "kind": "sweep",
            "cached": 1,
            "replayed": 1,
            "points": [
                {
                    "label": "rm@A100",
                    "device": "A100",
                    "cached": True,
                    "summary": {"mean_iteration_time_us": 100.0},
                },
                {
                    "label": "rm@V100",
                    "device": "V100",
                    "cached": False,
                    "summary": {"mean_iteration_time_us": 250.0},
                },
            ],
        }
        analysis = analyze_job_result(result)
        assert analysis["kind"] == "sweep"
        assert analysis["slowest_point"] == "rm@V100"
        assert analysis["fastest_point"] == "rm@A100"
        assert analysis["spread_pct"] == pytest.approx(150.0)
        assert analysis["mean_iteration_time_us_by_device"] == {
            "A100": 100.0,
            "V100": 250.0,
        }

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="cannot analyze"):
            analyze_job_result({"kind": "mystery"})

    def test_http_analysis_route(self, tmp_path):
        repo_root = tmp_path / "traces"
        repo = TraceRepository(repo_root)
        workload = ParamLinearWorkload(
            ParamLinearConfig(
                batch_size=8, num_layers=2, hidden_size=32, input_size=32
            )
        )
        capture = capture_workload(workload, warmup_iterations=0)
        repo.add(workload.name, capture.execution_trace)

        daemon = ReplayDaemon(tmp_path / "state", workers=1)
        with DaemonServer(daemon, port=0) as server:
            record = daemon.submit(
                "alice",
                JobSpec(
                    "sweep",
                    {
                        "repo": str(repo_root),
                        "traces": None,
                        "devices": ["A100"],
                        "axes": {},
                        "base": {"iterations": 1},
                    },
                ),
            )
            daemon.wait(record.id, timeout=WAIT_S)
            request = urllib.request.Request(
                f"{server.url}/jobs/{record.id}/analysis",
                headers={"X-Repro-Client": "alice"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                payload = json.loads(response.read().decode())
        assert payload["schema_version"] == DAEMON_SCHEMA_VERSION
        assert payload["id"] == record.id
        assert payload["kind"] == "sweep"
        assert payload["analysis"]["kind"] == "sweep"
        assert payload["analysis"]["points"] == 1
        assert (
            payload["analysis"]["schema_version"] == INSIGHTS_SCHEMA_VERSION
        )


# ----------------------------------------------------------------------
# Satellite: structured JSON-lines logging
# ----------------------------------------------------------------------
class TestStructuredLogging:
    def test_lines_are_json_with_fields(self):
        stream = io.StringIO()
        logger = get_logger("test.insights.log", stream=stream)
        logger.info("hello %s", "world", extra={"fields": {"job": "j1"}})
        logger.warning("careful")
        lines = stream.getvalue().strip().splitlines()
        first, second = (json.loads(line) for line in lines)
        assert first["message"] == "hello world"
        assert first["level"] == "info"
        assert first["logger"] == "test.insights.log"
        assert first["job"] == "j1"
        assert first["ts"] > 0
        assert second["level"] == "warning"
        assert "correlation" not in first

    def test_tracer_correlation_is_stamped(self):
        stream = io.StringIO()
        tracer = Tracer()
        logger = get_logger("test.insights.corr", tracer=tracer, stream=stream)
        with tracer.scope(job_id="job-42", rank=3):
            logger.info("inside")
        logger.info("outside")
        inside, outside = (
            json.loads(line) for line in stream.getvalue().strip().splitlines()
        )
        assert inside["correlation"] == {"job_id": "job-42", "rank": 3}
        assert "correlation" not in outside

    def test_get_logger_is_idempotent(self):
        first_stream = io.StringIO()
        logger = get_logger("test.insights.idem", stream=first_stream)
        again = get_logger("test.insights.idem")
        assert again is logger
        assert len([h for h in logger.handlers]) == 1
        # Re-binding the stream redirects the existing handler.
        second_stream = io.StringIO()
        get_logger("test.insights.idem", stream=second_stream)
        logger.info("redirected")
        assert first_stream.getvalue() == ""
        assert "redirected" in second_stream.getvalue()

    def test_exceptions_are_captured(self):
        stream = io.StringIO()
        logger = get_logger("test.insights.exc", stream=stream)
        try:
            raise ValueError("boom")
        except ValueError:
            logger.exception("failed")
        payload = json.loads(stream.getvalue().strip())
        assert payload["level"] == "error"
        assert "ValueError: boom" in payload["exc_info"]

    def test_daemon_access_log_is_structured(self, tmp_path, capsys):
        from repro.daemon.server import ACCESS_LOGGER_NAME

        stream = io.StringIO()
        daemon = ReplayDaemon(tmp_path / "state", workers=1)
        with DaemonServer(daemon, port=0, verbose=True) as server:
            get_logger(ACCESS_LOGGER_NAME, stream=stream)
            urllib.request.urlopen(f"{server.url}/health", timeout=10).read()
        lines = [
            json.loads(line)
            for line in stream.getvalue().strip().splitlines()
            if line
        ]
        assert lines, "verbose daemon should emit an access log line"
        assert lines[0]["logger"] == ACCESS_LOGGER_NAME
        assert lines[0]["method"] == "GET"
        assert lines[0]["path"] == "/health"


# ----------------------------------------------------------------------
# Satellite: the serializer-bypass lint rule
# ----------------------------------------------------------------------
class TestSerializerBypassRule:
    def _run(self, root: Path) -> dict:
        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "scripts")
        )
        try:
            from check_deprecated_usage import find_offenders
        finally:
            sys.path.pop(0)
        return find_offenders(root)

    def _tree(self, tmp_path: Path, relative: str, text: str) -> Path:
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def test_flags_json_dumps_in_insights_and_service(self, tmp_path):
        self._tree(
            tmp_path,
            "src/repro/insights/bad.py",
            "import json\npayload = json.dumps({'a': 1})\n",
        )
        self._tree(
            tmp_path,
            "src/repro/service/worse.py",
            "json.dump(payload, handle)\n",
        )
        offenders = self._run(tmp_path)
        assert len(offenders["serializer-bypass"]) == 2

    def test_serializer_loads_and_other_trees_pass(self, tmp_path):
        self._tree(
            tmp_path,
            "src/repro/service/serialize.py",
            "import json\nreturn json.dumps(payload)\n",
        )
        self._tree(
            tmp_path,
            "src/repro/insights/regression.py",
            "entry = json.loads(line)\n",
        )
        self._tree(
            tmp_path,
            "src/repro/telemetry/logging.py",
            "return json.dumps(payload, default=str)\n",
        )
        offenders = self._run(tmp_path)
        assert "serializer-bypass" not in offenders

    def test_repository_is_clean(self):
        offenders = self._run(REPO_ROOT)
        assert "serializer-bypass" not in offenders, offenders.get(
            "serializer-bypass"
        )
