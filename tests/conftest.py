"""Shared fixtures for the test suite.

Workload fixtures use deliberately small configurations so the full suite
stays fast; the benchmark harness (benchmarks/) uses the paper-scale
defaults instead.
"""

from __future__ import annotations

import pytest

from repro.torchsim import Runtime, Tensor, ExecutionGraphObserver, Profiler
from repro.torchsim import nn
from repro.torchsim.autograd import GradientTape
from repro.workloads.asr import ASRConfig, ASRWorkload
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from repro.workloads.resnet import ResNetConfig, ResNetWorkload
from repro.workloads.rm import RMConfig, RMWorkload
from repro.bench.harness import capture_workload


# ----------------------------------------------------------------------
# Small workload configurations
# ----------------------------------------------------------------------
@pytest.fixture
def small_param_linear() -> ParamLinearWorkload:
    return ParamLinearWorkload(
        ParamLinearConfig(batch_size=64, num_layers=4, hidden_size=256, input_size=256)
    )


@pytest.fixture
def small_resnet() -> ResNetWorkload:
    return ResNetWorkload(
        ResNetConfig(batch_size=4, image_size=64, num_classes=100, blocks_per_stage=1)
    )


@pytest.fixture
def small_asr() -> ASRWorkload:
    return ASRWorkload(
        ASRConfig(
            batch_size=4,
            num_frames=80,
            feature_dim=40,
            hidden_size=128,
            ffn_size=256,
            num_ffn_blocks=2,
            num_lstm_layers=2,
            vocab_size=512,
        )
    )


def make_small_rm(rank: int = 0, world_size: int = 1) -> RMWorkload:
    return RMWorkload(
        RMConfig(
            batch_size=32,
            num_tables=8,
            rows_per_table=10_000,
            embedding_dim=32,
            pooling_factor=4,
            bottom_mlp=(64, 32),
            top_mlp=(128, 64),
        ),
        rank=rank,
        world_size=world_size,
    )


@pytest.fixture
def small_rm() -> RMWorkload:
    return make_small_rm()


# ----------------------------------------------------------------------
# Runtime / capture helpers
# ----------------------------------------------------------------------
@pytest.fixture
def runtime() -> Runtime:
    return Runtime("A100")


@pytest.fixture
def small_linear_capture(small_param_linear):
    """Capture of one iteration of the small PARAM-linear workload."""
    return capture_workload(small_param_linear, device="A100", warmup_iterations=0)


@pytest.fixture
def captured_runtime_pieces():
    """A tiny manually-built model capture, handy for ET/profiler tests."""
    runtime = Runtime("A100")
    observer = runtime.attach_observer(ExecutionGraphObserver())
    observer.register_callback(None)
    profiler = runtime.attach_profiler(Profiler())
    model = nn.Sequential(nn.Linear(64, 64), nn.ReLU(), nn.Linear(64, 32))
    tape = GradientTape()
    x = Tensor.empty((16, 64))

    observer.start()
    profiler.start()
    start = runtime.synchronize()
    with runtime.record_function("## forward ##"):
        out = model(runtime, x, tape)
    loss = runtime.call("aten::mse_loss", out, Tensor.empty(out.shape))
    tape.backward(runtime)
    nn.SGD(model.parameters(), 0.01).step(runtime)
    end = runtime.synchronize()
    observer.stop()
    profiler.stop()

    return {
        "runtime": runtime,
        "trace": observer.trace,
        "profiler_trace": profiler.trace,
        "iteration_time_us": end - start,
        "model": model,
    }
