"""Tests for ReplayConfig identity hardening: strict digests and
unknown-key reporting in ``from_dict``."""

import logging

import pytest

from repro.core.replayer import ReplayConfig
from repro.hardware.network import InterconnectSpec
from repro.core.tensors import EmbeddingValueConfig


class TestDigestStrictness:
    def test_digest_stable_for_plain_configs(self):
        assert ReplayConfig().digest() == ReplayConfig().digest()
        assert ReplayConfig(device="A100").digest() != ReplayConfig(device="V100").digest()

    def test_digest_encodes_nested_dataclasses(self):
        default = ReplayConfig()
        tuned = ReplayConfig(
            embedding_config=EmbeddingValueConfig(zipf_alpha=1.2),
            interconnect=InterconnectSpec(),
        )
        assert default.digest() != tuned.digest()
        # Round-tripping through the dict form preserves the digest.
        assert ReplayConfig.from_dict(tuned.to_dict()).digest() == tuned.digest()

    def test_digest_raises_on_unserializable_field(self):
        class Opaque:
            pass

        config = ReplayConfig(embedding_config=Opaque())
        with pytest.raises(TypeError, match="non-JSON-serialisable"):
            config.digest()

    def test_unserializable_values_cannot_collide_via_repr(self):
        # Two distinct objects whose str() forms collide must not silently
        # produce a shared digest (the old default=str fallback allowed it).
        class Sneaky:
            def __str__(self):
                return "same"

        first = ReplayConfig(embedding_config=Sneaky())
        second = ReplayConfig(embedding_config=Sneaky())
        with pytest.raises(TypeError):
            first.digest()
        with pytest.raises(TypeError):
            second.digest()


class TestFromDictUnknownKeys:
    def test_unknown_keys_logged_when_lenient(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.core.replayer"):
            config = ReplayConfig.from_dict({"device": "V100", "iteratons": 5})
        assert config == ReplayConfig(device="V100")
        assert "iteratons" in caplog.text

    def test_unknown_keys_raise_when_strict(self):
        with pytest.raises(ValueError, match="iteratons"):
            ReplayConfig.from_dict({"iteratons": 5}, strict=True)

    def test_strict_accepts_exact_roundtrip(self):
        config = ReplayConfig(device="V100", iterations=3)
        assert ReplayConfig.from_dict(config.to_dict(), strict=True) == config

    def test_absent_keys_keep_defaults(self):
        config = ReplayConfig.from_dict({"device": "V100"}, strict=True)
        assert config.iterations == ReplayConfig().iterations
        assert config.embedding_config == EmbeddingValueConfig()
