"""Property-based tests for the event-driven cluster scheduler.

The scheduler's defining guarantees, held under hypothesis-generated
adversity:

* **Schedule independence** — the report is a function of the traces and
  the config, *not* of the order the scheduler happens to advance runnable
  cursors in.  ``ClusterReplayer.scheduler_pick`` exists precisely so this
  suite can inject arbitrary (seeded) pick orders and demand byte-identical
  reports.
* **Virtual-time monotonicity** — no rank's clock ever runs backwards, no
  matter how often its cursor is parked on a collective and resumed.
* **Determinism** — the same fleet + config replayed twice is
  byte-identical, including under randomized straggler/comm-delay configs,
  and always agrees with the legacy threaded oracle.
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterReplayer
from repro.core.pipeline import ReplayHook
from repro.core.replayer import ReplayConfig
from repro.workloads.ddp import DistributedRunner
from tests.conftest import make_small_rm

_FLEET = None


def _fleet():
    """A tiny 2-rank DDP-RM fleet, built once for the whole module (small on
    purpose: hypothesis replays it dozens of times)."""
    global _FLEET
    if _FLEET is None:
        runner = DistributedRunner(
            lambda rank, world: make_small_rm(rank=rank, world_size=world), world_size=2
        )
        _FLEET = [capture.execution_trace for capture in runner.run()]
    return _FLEET


def _digest(report) -> str:
    return hashlib.sha256(
        json.dumps(report.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()


def _replay(config: ReplayConfig = None, pick=None, engine: str = "event", watchers=None):
    replayer = ClusterReplayer(
        config if config is not None else ReplayConfig(device="A100", iterations=1),
        engine=engine,
        profile_hook_factory=(lambda rank: watchers[rank]) if watchers else None,
    )
    if pick is not None:
        replayer.scheduler_pick = pick
    return replayer.replay(_fleet())


class _ClockWatcher(ReplayHook):
    """Records the rank-local virtual clock at every replayed op."""

    def __init__(self) -> None:
        self.samples = []

    def on_op_replayed(self, context, entry, output) -> None:
        runtime = context.runtime
        if runtime is not None:
            self.samples.append(max(runtime.cpu_clocks().values()))

    def report(self, **kwargs):
        # The engine asks every factory-attached hook for a profile; a
        # watcher has none to give.
        return None


class TestScheduleIndependence:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_report_independent_of_pick_order(self, seed):
        baseline = _digest(_replay())  # FIFO pick order
        rng = random.Random(seed)
        shuffled = _replay(pick=lambda ready, step: rng.randrange(len(ready)))
        assert _digest(shuffled) == baseline

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=5, deadline=None)
    def test_adversarial_order_still_matches_threaded_oracle(self, seed):
        rng = random.Random(seed)
        event = _replay(pick=lambda ready, step: rng.randrange(len(ready)))
        threaded = _replay(engine="threaded")
        assert event.to_dict() == threaded.to_dict()


class TestVirtualTimeMonotonicity:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_no_rank_clock_runs_backwards(self, seed):
        rng = random.Random(seed)
        watchers = {0: _ClockWatcher(), 1: _ClockWatcher()}
        _replay(pick=lambda ready, step: rng.randrange(len(ready)), watchers=watchers)
        for rank, watcher in watchers.items():
            assert watcher.samples, f"rank {rank} observed no ops"
            for earlier, later in zip(watcher.samples, watcher.samples[1:]):
                assert later >= earlier, f"rank {rank} clock went backwards"


class TestConfigDeterminism:
    @given(
        straggler=st.sampled_from([None, "V100", "NewPlatform"]),
        delay_scale=st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
        extra_us=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_randomized_configs_replay_identically(self, straggler, delay_scale, extra_us, seed):
        config = ReplayConfig(
            device="A100",
            iterations=1,
            comm_delay_scale=delay_scale,
            comm_extra_delay_us=extra_us,
        )
        overrides = {0: {"device": straggler}} if straggler else None

        def run(engine, pick=None):
            replayer = ClusterReplayer(config, engine=engine)
            if pick is not None:
                replayer.scheduler_pick = pick
            return replayer.replay(_fleet(), rank_overrides=overrides)

        rng = random.Random(seed)
        first = run("event", pick=lambda ready, step: rng.randrange(len(ready)))
        second = run("event")
        oracle = run("threaded")
        assert _digest(first) == _digest(second) == _digest(oracle)
