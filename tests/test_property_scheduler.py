"""Property-based tests pinning the event-driven cluster scheduler.

With the legacy threaded engine retired, this suite *is* the scheduler's
contract.  The defining guarantees, held under hypothesis-generated
adversity:

* **Schedule independence** — the report is a function of the traces and
  the config, *not* of the order the scheduler happens to advance runnable
  cursors in.  ``ClusterReplayer.scheduler_pick`` exists precisely so this
  suite can inject arbitrary (seeded) pick orders and demand byte-identical
  reports.
* **Virtual-time monotonicity** — no rank's clock ever runs backwards, no
  matter how often its cursor is parked on a collective and resumed.
* **Determinism** — the same fleet + config replayed twice is
  byte-identical, including under randomized straggler/comm-delay configs.

It also absorbs the scheduler-adjacent regression pins that used to live in
the (now deleted) differential-equivalence suite: the hierarchical topology
model, ``ProfileHook`` re-anchoring under the single-threaded event loop,
and the ``replay-dist`` CLI flag surface.
"""

from __future__ import annotations

import hashlib
import json
import random
from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

import repro.api as api
from repro.bench.harness import capture_workload
from repro.cluster import ClusterReplayer
from repro.core.pipeline import ReplayHook
from repro.core.replayer import ReplayConfig
from repro.hardware.network import (
    CollectiveCostModel,
    HierarchicalTopology,
    InterconnectSpec,
    TopologyTier,
    topology_from_name,
)
from repro.profiling import ProfileHook
from repro.service import serialize
from repro.service.cli import main as cli_main
from repro.workloads.ddp import DistributedRunner
from tests.conftest import make_small_rm

_FLEET = None


def _ddp_traces(world_size: int):
    runner = DistributedRunner(
        lambda rank, world: make_small_rm(rank=rank, world_size=world),
        world_size=world_size,
    )
    return [capture.execution_trace for capture in runner.run()]


def _fleet():
    """A tiny 2-rank DDP-RM fleet, built once for the whole module (small on
    purpose: hypothesis replays it dozens of times)."""
    global _FLEET
    if _FLEET is None:
        _FLEET = _ddp_traces(2)
    return _FLEET


@pytest.fixture(scope="module")
def ddp_fleet():
    """Lazily-built, module-cached DDP-RM trace fleets keyed by world size."""
    cache = {2: _fleet()}

    def get(world_size: int):
        if world_size not in cache:
            cache[world_size] = _ddp_traces(world_size)
        return cache[world_size]

    return get


def _digest(report) -> str:
    """Canonical report digest: equality down to the last serialised byte."""
    return hashlib.sha256(
        json.dumps(report.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()


def _replay(config: ReplayConfig = None, pick=None, watchers=None):
    replayer = ClusterReplayer(
        config if config is not None else ReplayConfig(device="A100", iterations=1),
        profile_hook_factory=(lambda rank: watchers[rank]) if watchers else None,
    )
    if pick is not None:
        replayer.scheduler_pick = pick
    return replayer.replay(_fleet())


class _ClockWatcher(ReplayHook):
    """Records the rank-local virtual clock at every replayed op."""

    def __init__(self) -> None:
        self.samples = []

    def on_op_replayed(self, context, entry, output) -> None:
        runtime = context.runtime
        if runtime is not None:
            self.samples.append(max(runtime.cpu_clocks().values()))

    def report(self, **kwargs):
        # The engine asks every factory-attached hook for a profile; a
        # watcher has none to give.
        return None


class TestScheduleIndependence:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_report_independent_of_pick_order(self, seed):
        baseline = _digest(_replay())  # FIFO pick order
        rng = random.Random(seed)
        shuffled = _replay(pick=lambda ready, step: rng.randrange(len(ready)))
        assert _digest(shuffled) == baseline


class TestVirtualTimeMonotonicity:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_no_rank_clock_runs_backwards(self, seed):
        rng = random.Random(seed)
        watchers = {0: _ClockWatcher(), 1: _ClockWatcher()}
        _replay(pick=lambda ready, step: rng.randrange(len(ready)), watchers=watchers)
        for rank, watcher in watchers.items():
            assert watcher.samples, f"rank {rank} observed no ops"
            for earlier, later in zip(watcher.samples, watcher.samples[1:]):
                assert later >= earlier, f"rank {rank} clock went backwards"


class TestConfigDeterminism:
    @given(
        straggler=st.sampled_from([None, "V100", "NewPlatform"]),
        delay_scale=st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
        extra_us=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_randomized_configs_replay_identically(self, straggler, delay_scale, extra_us, seed):
        config = ReplayConfig(
            device="A100",
            iterations=1,
            comm_delay_scale=delay_scale,
            comm_extra_delay_us=extra_us,
        )
        overrides = {0: {"device": straggler}} if straggler else None

        def run(pick=None):
            replayer = ClusterReplayer(config)
            if pick is not None:
                replayer.scheduler_pick = pick
            return replayer.replay(_fleet(), rank_overrides=overrides)

        rng = random.Random(seed)
        adversarial = run(pick=lambda ready, step: rng.randrange(len(ready)))
        fifo = run()
        assert _digest(adversarial) == _digest(fifo)


# ----------------------------------------------------------------------
# Scheduler contract pins (absorbed from the retired equivalence suite)
# ----------------------------------------------------------------------
class TestSchedulerContract:
    def test_serial_backend_still_rejects_multi_rank_fleets(self, ddp_fleet):
        """The backend contract predates the event engine and survives it."""
        with pytest.raises(ValueError, match="serial"):
            ClusterReplayer(backend="serial").replay(ddp_fleet(2))

    @pytest.mark.parametrize("world_size", [1, 4])
    def test_deterministic_across_runs(self, ddp_fleet, world_size):
        traces = ddp_fleet(world_size)
        replay = lambda: ClusterReplayer(ReplayConfig(device="A100")).replay(traces)
        assert _digest(replay()) == _digest(replay())

    def test_single_replica_failure_contract(self, ddp_fleet):
        from repro.cluster import ClusterReplayError

        with pytest.raises(ClusterReplayError, match="rank 0"):
            ClusterReplayer(ReplayConfig(device="NoSuchDevice")).replay([ddp_fleet(1)[0]])

    def test_memory_tracking_toggle(self, ddp_fleet):
        traces = ddp_fleet(2)
        on = ClusterReplayer(ReplayConfig(device="A100"), track_memory=True).replay(traces)
        off = ClusterReplayer(ReplayConfig(device="A100"), track_memory=False).replay(traces)
        assert on.has_memory is True
        assert off.has_memory is False

    def test_world_scaling_override(self, ddp_fleet):
        """Re-pricing a small fleet at a bigger world (the scale-up what-if)
        is deterministic — this is the path the 1024-rank sweep exercises."""
        traces = ddp_fleet(2)
        config = ReplayConfig(device="A100", world_size=64)
        first = ClusterReplayer(config).replay(traces)
        second = ClusterReplayer(config).replay(traces)
        assert first.world_size == second.world_size == 64
        assert first.to_dict() == second.to_dict()


# ----------------------------------------------------------------------
# Hierarchical topology model
# ----------------------------------------------------------------------
class TestHierarchicalTopology:
    def test_flat_preset_is_no_topology(self):
        assert topology_from_name(None) is None
        assert topology_from_name("flat") is None

    def test_unknown_preset_is_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            topology_from_name("torus")

    def test_presets_resolve_to_increasing_spans(self):
        for name in ("nvlink-island", "rail-spine"):
            topology = topology_from_name(name, InterconnectSpec())
            spans = [tier.span for tier in topology.tiers]
            assert spans == sorted(spans)
            assert len(set(spans)) == len(spans)

    def test_spanned_tiers_grow_with_world_size(self):
        topology = topology_from_name("rail-spine", InterconnectSpec())
        assert len(topology.spanned(2)) == 1
        assert len(topology.spanned(64)) == 2
        assert len(topology.spanned(100_000)) == 3

    def test_bottleneck_is_min_over_spanned_tiers(self):
        topology = HierarchicalTopology(
            name="test",
            tiers=(
                TopologyTier("fast", 8, 600.0, 2.0),
                TopologyTier("slow", 1 << 20, 25.0, 10.0),
            ),
        )
        assert topology.bottleneck_bw_gbps(4) == 600.0
        assert topology.bottleneck_bw_gbps(512) == 25.0
        # Latency accumulates over every spanned tier.
        assert topology.latency_us(512) > topology.latency_us(4)

    def test_no_topology_keeps_flat_costs_byte_identical(self):
        spec = InterconnectSpec()
        flat = CollectiveCostModel(spec)
        explicit = CollectiveCostModel(spec, topology=None)
        for world in (2, 8, 64, 1024):
            assert flat.collective_us("all_reduce", 1 << 22, world) == explicit.collective_us(
                "all_reduce", 1 << 22, world
            )

    def test_spine_crossing_costs_more_than_flat(self):
        spec = InterconnectSpec()
        flat = CollectiveCostModel(spec)
        spine = CollectiveCostModel(spec, topology=topology_from_name("rail-spine", spec))
        world = 1024  # crosses the (slower, higher-latency) spine tier
        assert spine.collective_us("all_reduce", 1 << 22, world) > flat.collective_us(
            "all_reduce", 1 << 22, world
        )

    def test_flat_topology_report_matches_no_topology(self, ddp_fleet):
        traces = ddp_fleet(2)
        base = api.replay_cluster(traces).on("A100").run()
        flagged = api.replay_cluster(traces).on("A100").topology("flat").run()
        assert base.to_dict() == flagged.to_dict()

    def test_topology_shifts_fleet_costs_deterministically(self, ddp_fleet):
        traces = ddp_fleet(2)
        session = lambda: api.replay_cluster(traces).on("A100").world(1024)
        flat = session().run()
        spine = session().topology("rail-spine").run()
        assert spine.critical_path_us >= flat.critical_path_us
        # Topology is part of the replay config, so it prices reproducibly.
        again = session().topology("rail-spine").run()
        assert spine.to_dict() == again.to_dict()

    def test_topology_participates_in_config_digest(self):
        base = ReplayConfig(device="A100")
        spine = ReplayConfig(device="A100", topology="rail-spine")
        assert base.digest() != spine.digest()
        assert ReplayConfig.from_dict(spine.to_dict()).digest() == spine.digest()


# ----------------------------------------------------------------------
# ProfileHook attribution under the single-threaded event loop
# ----------------------------------------------------------------------
class TestProfileAttribution:
    @staticmethod
    def _hook_fixture():
        ticks = [0.0]

        def clock() -> float:
            return ticks[0]

        hook = ProfileHook(clock=clock)
        context = SimpleNamespace(measuring=True)
        entry = SimpleNamespace(node=SimpleNamespace(name="aten::mm"))
        return ticks, hook, context, entry

    def test_on_resume_reanchors_the_per_op_mark(self):
        """Regression: ProfileHook assumed one thread per rank, so the first
        op after an event-scheduler context switch was billed for the wall
        time spent replaying *other* ranks.  ``on_resume`` re-anchors."""
        ticks, hook, context, entry = self._hook_fixture()
        hook.on_stage_start(context, SimpleNamespace(name="execute"))
        ticks[0] = 1.0
        hook.on_op_replayed(context, entry, None)  # delta = 1.0
        ticks[0] = 9.0  # the scheduler runs other ranks for 8 ticks...
        hook.on_resume(context)  # ...then resumes this rank
        ticks[0] = 10.0
        hook.on_op_replayed(context, entry, None)  # delta must be 1.0, not 9.0
        (op,) = hook.report().ops
        assert op.count == 2
        assert op.max_us == pytest.approx(1e6)  # 1.0 s in us, no foreign time
        assert op.total_ms == pytest.approx(2e3)

    def test_without_resume_foreign_time_would_be_billed(self):
        """The inverse scenario documents why the hook needs on_resume."""
        ticks, hook, context, entry = self._hook_fixture()
        hook.on_stage_start(context, SimpleNamespace(name="execute"))
        ticks[0] = 1.0
        hook.on_op_replayed(context, entry, None)
        ticks[0] = 10.0  # no on_resume: the 9 foreign ticks leak in
        hook.on_op_replayed(context, entry, None)
        (op,) = hook.report().ops
        assert op.max_us == pytest.approx(9e6)

    def test_event_engine_profiles_each_rank_separately(self, ddp_fleet):
        traces = ddp_fleet(2)
        report = api.replay_cluster(traces).on("A100").with_profiling().run()
        profiles = report.profile_reports
        assert set(profiles) == {0, 1}
        for rank, profile in profiles.items():
            assert profile.replayed_ops > 0


# ----------------------------------------------------------------------
# replay-dist CLI flags
# ----------------------------------------------------------------------
class TestReplayDistCliFlags:
    @pytest.fixture(scope="class")
    def fleet_dir(self, tmp_path_factory):
        runner = DistributedRunner(
            lambda rank, world: make_small_rm(rank=rank, world_size=world), world_size=2
        )
        directory = tmp_path_factory.mktemp("fleet")
        DistributedRunner.save_captures(runner.run(), directory)
        return directory

    def test_world_size_alias(self, fleet_dir, capsys):
        exit_code = cli_main(
            ["replay-dist", str(fleet_dir), "--world-size", "16", "--json", "-n", "1"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["world_size"] == 16

    def test_topology_flag_reaches_the_cost_model(self, fleet_dir, capsys):
        args = ["replay-dist", str(fleet_dir), "--world-size", "1024", "--json", "-n", "1"]
        assert cli_main(args) == 0
        flat = json.loads(capsys.readouterr().out)
        assert cli_main(args + ["--topology", "rail-spine"]) == 0
        spine = json.loads(capsys.readouterr().out)
        assert spine["critical_path_us"] >= flat["critical_path_us"]

    def test_unknown_topology_is_an_argparse_error(self, fleet_dir, capsys):
        with pytest.raises(SystemExit):
            cli_main(["replay-dist", str(fleet_dir), "--topology", "torus"])

    def test_retired_engine_flag_is_rejected(self, fleet_dir, capsys):
        """``--engine`` shipped for exactly one release alongside the threaded
        oracle; both are gone."""
        with pytest.raises(SystemExit):
            cli_main(["replay-dist", str(fleet_dir), "--engine", "threaded"])

    def test_json_round_trips_through_serialize(self, fleet_dir, capsys):
        assert (
            cli_main(
                ["replay-dist", str(fleet_dir), "--topology", "nvlink-island", "--json", "-n", "1"]
            )
            == 0
        )
        cli_payload = json.loads(capsys.readouterr().out)
        report = (
            api.replay_cluster(fleet_dir)
            .on("A100")
            .iterations(1)
            .topology("nvlink-island")
            .run()
        )
        assert cli_payload == json.loads(serialize.dumps(serialize.cluster_payload(report)))
