"""Tests for the replay-support policy and operator selection."""

import pytest

from repro.core.registry import ReplaySupport
from repro.core.selection import OperatorSelector
from repro.et.schema import ETNode
from repro.bench.harness import capture_workload
from tests.conftest import make_small_rm


def op_node(name, schema="x::y(Tensor a) -> Tensor", node_id=2, parent=1):
    return ETNode(name=name, id=node_id, parent=parent, op_schema=schema)


class TestReplaySupport:
    def test_aten_supported_by_default(self):
        support = ReplaySupport()
        assert support.is_supported(op_node("aten::mm", "aten::mm(Tensor a, Tensor b) -> Tensor"))

    def test_c10d_and_fbgemm_supported_by_default(self):
        support = ReplaySupport()
        assert support.is_supported(op_node("c10d::all_reduce", "c10d::all_reduce(Tensor[] t) -> Tensor[]"))
        assert support.is_supported(op_node(
            "fbgemm::split_embedding_codegen_lookup_function",
            "fbgemm::split_embedding_codegen_lookup_function(Tensor w) -> Tensor",
        ))

    def test_fused_unsupported_by_default(self):
        support = ReplaySupport()
        node = op_node("fused::TensorExprGroup", "fused::TensorExprGroup(Tensor[] i) -> Tensor")
        assert not support.is_supported(node)
        assert "fused" in support.unsupported_reason(node)

    def test_fairseq_unsupported_by_default(self):
        support = ReplaySupport()
        node = op_node("fairseq::lstm_layer", "fairseq::lstm_layer(Tensor x) -> Tensor")
        assert not support.is_supported(node)
        assert "fairseq" in support.unsupported_reason(node)

    def test_register_library_enables_ops(self):
        support = ReplaySupport()
        support.register_library("fairseq")
        assert support.is_supported(op_node("fairseq::lstm_layer", "fairseq::lstm_layer(Tensor x) -> Tensor"))

    def test_register_existing_custom_op_by_name(self):
        support = ReplaySupport()
        support.register_custom_op("fairseq::lstm_layer")
        assert support.is_supported(op_node("fairseq::lstm_layer", "fairseq::lstm_layer(Tensor x) -> Tensor"))
        assert "fairseq::lstm_layer" in support.user_registered_ops

    def test_register_new_custom_op_requires_impl_and_schema(self):
        support = ReplaySupport()
        with pytest.raises(ValueError):
            support.register_custom_op("mylib::new_op")

    def test_register_new_custom_op_with_impl(self):
        support = ReplaySupport()

        def impl(ctx, x):
            return x

        support.register_custom_op("mylib::identity", impl, "mylib::identity(Tensor x) -> Tensor")
        assert support.registry.has("mylib::identity")
        assert support.is_supported(op_node("mylib::identity", "mylib::identity(Tensor x) -> Tensor"))

    def test_annotation_nodes_never_supported(self):
        support = ReplaySupport()
        annotation = ETNode(name="## forward ##", id=2, parent=1)
        assert not support.is_supported(annotation)

    def test_unknown_operator_unsupported(self):
        support = ReplaySupport()
        node = op_node("aten::imaginary_op", "aten::imaginary_op(Tensor x) -> Tensor")
        assert not support.is_supported(node)
        assert "no implementation" in support.unsupported_reason(node)


class TestOperatorSelector:
    def test_parent_child_dedup(self, captured_runtime_pieces):
        selection = OperatorSelector().select(captured_runtime_pieces["trace"])
        names = [entry.node.name for entry in selection.entries]
        assert "aten::linear" in names
        assert "aten::addmm" not in names  # only appears as a child of linear
        assert "aten::as_strided" not in names

    def test_coverage_full_for_linear_model(self, captured_runtime_pieces):
        selection = OperatorSelector().select(
            captured_runtime_pieces["trace"], captured_runtime_pieces["profiler_trace"]
        )
        coverage = selection.coverage()
        assert coverage.count_coverage == pytest.approx(1.0)
        assert coverage.time_coverage == pytest.approx(1.0)
        assert coverage.total_gpu_time_us > 0

    def test_rm_coverage_below_one(self):
        capture = capture_workload(make_small_rm(), warmup_iterations=0)
        selection = OperatorSelector().select(capture.execution_trace, capture.profiler_trace)
        coverage = selection.coverage()
        assert coverage.count_coverage < 1.0
        assert coverage.time_coverage < 1.0
        reasons = {entry.node.namespace for entry in selection.unsupported_entries()}
        assert "internal" in reasons
        assert "fused" in reasons

    def test_category_counts(self, captured_runtime_pieces):
        selection = OperatorSelector().select(captured_runtime_pieces["trace"])
        counts = selection.category_counts()
        assert counts["aten"] == len(selection)

    def test_subtrace_restriction(self, captured_runtime_pieces):
        selection = OperatorSelector().select(
            captured_runtime_pieces["trace"], subtrace_label="## forward ##"
        )
        full = OperatorSelector().select(captured_runtime_pieces["trace"])
        assert 0 < len(selection) < len(full)
        # Backward operators live outside the forward label.
        assert all("Backward" not in entry.node.name for entry in selection.entries)

    def test_missing_subtrace_label_raises(self, captured_runtime_pieces):
        with pytest.raises(KeyError):
            OperatorSelector().select(captured_runtime_pieces["trace"], subtrace_label="## nope ##")

    def test_category_filter(self):
        capture = capture_workload(make_small_rm(rank=0, world_size=1), warmup_iterations=0)
        selection = OperatorSelector().select(capture.execution_trace, categories=["custom"])
        assert selection.entries
        assert all(entry.category == "custom" for entry in selection.entries)

    def test_invalid_category_rejected(self, captured_runtime_pieces):
        with pytest.raises(ValueError):
            OperatorSelector().select(captured_runtime_pieces["trace"], categories=["gpu"])

    def test_unsupported_time_attributed(self):
        capture = capture_workload(make_small_rm(), warmup_iterations=0)
        selection = OperatorSelector().select(capture.execution_trace, capture.profiler_trace)
        unsupported_time = sum(
            entry.original_gpu_time_us for entry in selection.unsupported_entries()
        )
        assert unsupported_time > 0
