"""The zero-overhead-when-disabled contract, pinned byte-for-byte.

Telemetry is purely observational: with the hooks absent OR present but
disabled, every replay's summary ``to_dict()`` payload and its cache
digests must be byte-identical (``json.dumps(..., sort_keys=True)``
equality) — for the single-rank PARAM-linear and RM sessions and the
4-rank DDP-RM cluster replay.  A failure here means instrumentation
leaked into results or cache keys, which would silently invalidate every
cached sweep point.
"""

from __future__ import annotations

import json

import pytest

import repro.api as api
from repro.service.cache import cache_key
from repro.telemetry import Tracer
from repro.workloads.ddp import DistributedRunner
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from tests.conftest import make_small_rm


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def make_param_linear():
    return ParamLinearWorkload(
        ParamLinearConfig(batch_size=8, num_layers=2, hidden_size=32, input_size=32)
    )


@pytest.fixture(scope="module", params=["param_linear", "rm"])
def capture(request):
    workload = make_param_linear() if request.param == "param_linear" else make_small_rm()
    return api.capture(workload, warmup_iterations=0)


class TestSingleRankByteIdentity:
    def _run(self, capture, telemetry: str):
        session = api.replay(capture).iterations(2)
        if telemetry == "disabled":
            session.with_telemetry(enabled=False)
        result = session.run()
        digest = cache_key(capture.execution_trace.digest(), session.config)
        return canonical(result.summarize().to_dict()), digest, session

    def test_absent_vs_disabled(self, capture):
        absent_summary, absent_digest, _ = self._run(capture, "absent")
        disabled_summary, disabled_digest, session = self._run(capture, "disabled")
        assert absent_summary == disabled_summary
        assert absent_digest == disabled_digest
        # The disabled tracer must not have recorded anything either.
        assert session.tracer.spans == () and session.tracer.events == ()


class TestClusterByteIdentity:
    @pytest.fixture(scope="class")
    def fleet(self):
        runner = DistributedRunner(
            lambda rank, world: make_small_rm(rank=rank, world_size=world),
            world_size=4,
        )
        return runner.run()

    def _run(self, fleet, telemetry: str):
        session = api.replay_cluster(fleet).on("A100").iterations(2)
        if telemetry == "disabled":
            session.with_telemetry(enabled=False)
        report = session.run()
        digests = {
            rank.rank: cache_key(
                fleet[rank.rank].execution_trace.digest(), session.config
            )
            for rank in report.ranks
        }
        return canonical(report.to_dict()), digests, session

    def test_absent_vs_disabled(self, fleet):
        absent_report, absent_digests, _ = self._run(fleet, "absent")
        disabled_report, disabled_digests, session = self._run(fleet, "disabled")
        assert absent_report == disabled_report
        assert absent_digests == disabled_digests
        assert session.tracer.spans == () and session.tracer.events == ()

    def test_enabled_telemetry_leaves_report_identical_too(self, fleet):
        """Stronger than the ISSUE asks: even *enabled* telemetry must not
        perturb the virtual-clock results (it only observes)."""
        baseline, _, _ = self._run(fleet, "absent")
        session = (
            api.replay_cluster(fleet).on("A100").iterations(2)
            .with_telemetry(Tracer())
        )
        report = session.run()
        assert canonical(report.to_dict()) == baseline
        assert session.tracer.spans  # and it actually recorded
