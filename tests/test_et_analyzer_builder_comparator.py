"""Tests for the ET analyzer, builder and similarity comparator."""

import pytest

from repro.et.analyzer import (
    CATEGORY_ATEN,
    CATEGORY_COMMS,
    CATEGORY_CUSTOM,
    CATEGORY_FUSED,
    ETAnalyzer,
    TraceDatabase,
    categorize_node,
    iter_top_level_operators,
)
from repro.et.builder import ETBuilder
from repro.et.comparator import SimilarityReport, TraceComparator, relative_error
from repro.et.schema import ETNode, ROOT_NODE_ID
from repro.et.trace import ExecutionTrace


def node(name, node_id, parent, schema="dummy::op(Tensor x) -> Tensor"):
    return ETNode(name=name, id=node_id, parent=parent, op_schema=schema)


class TestCategorization:
    def test_namespace_mapping(self):
        assert categorize_node(node("aten::mm", 2, 1)) == CATEGORY_ATEN
        assert categorize_node(node("c10d::all_reduce", 2, 1)) == CATEGORY_COMMS
        assert categorize_node(node("fused::TensorExprGroup", 2, 1)) == CATEGORY_FUSED
        assert categorize_node(node("fbgemm::lookup", 2, 1)) == CATEGORY_CUSTOM
        assert categorize_node(node("fairseq::lstm_layer", 2, 1)) == CATEGORY_CUSTOM


class TestTopLevelSelection:
    def test_children_of_operators_skipped(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        selected_names = [n.name for n in iter_top_level_operators(trace)]
        assert "aten::linear" in selected_names
        # aten::addmm only ever appears as a child of aten::linear here.
        assert "aten::addmm" not in selected_names

    def test_annotation_children_are_visited(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        selected_names = [n.name for n in iter_top_level_operators(trace)]
        # Ops under "## forward ##" and under autograd wrappers are reachable.
        assert "aten::mm" in selected_names or "aten::linear" in selected_names
        assert any(name.startswith("aten::") for name in selected_names)

    def test_annotations_themselves_not_selected(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        assert all(n.is_operator for n in iter_top_level_operators(trace))


class TestCategoryBreakdown:
    def test_counts_only_without_profiler(self, captured_runtime_pieces):
        breakdown = ETAnalyzer(captured_runtime_pieces["trace"]).category_breakdown()
        assert breakdown.counts[CATEGORY_ATEN] > 0
        assert breakdown.cpu_time_us == {}

    def test_full_breakdown_with_profiler(self, captured_runtime_pieces):
        analyzer = ETAnalyzer(
            captured_runtime_pieces["trace"], captured_runtime_pieces["profiler_trace"]
        )
        breakdown = analyzer.category_breakdown()
        assert breakdown.cpu_time_us[CATEGORY_ATEN] > 0
        assert breakdown.gpu_exposed_time_us[CATEGORY_ATEN] > 0
        fractions = breakdown.count_fractions()
        assert fractions[CATEGORY_ATEN] == pytest.approx(1.0)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_operator_counts(self, captured_runtime_pieces):
        counts = ETAnalyzer(captured_runtime_pieces["trace"]).operator_counts()
        assert counts["aten::linear"] == 2

    def test_operator_gpu_time(self, captured_runtime_pieces):
        analyzer = ETAnalyzer(
            captured_runtime_pieces["trace"], captured_runtime_pieces["profiler_trace"]
        )
        gpu_time = analyzer.operator_gpu_time()
        assert gpu_time["aten::linear"] > 0


class TestTraceDatabase:
    def test_select_top_by_population(self, captured_runtime_pieces):
        database = TraceDatabase()
        trace = captured_runtime_pieces["trace"]
        database.add("rare", trace, population=1)
        database.add("popular", trace, population=100)
        database.add("medium", trace, population=10)
        top = database.select_top(2)
        assert [entry.name for entry in top] == ["popular", "medium"]
        assert len(database) == 3

    def test_select_top_by_gpu_time(self, captured_runtime_pieces):
        database = TraceDatabase()
        database.add("with-profile", captured_runtime_pieces["trace"], population=1,
                     profiler_trace=captured_runtime_pieces["profiler_trace"])
        database.add("without-profile", captured_runtime_pieces["trace"], population=1)
        top = database.select_top(1, key="gpu_time")
        assert top[0].name == "with-profile"

    def test_unknown_key_rejected(self, captured_runtime_pieces):
        database = TraceDatabase()
        database.add("a", captured_runtime_pieces["trace"])
        with pytest.raises(ValueError):
            database.select_top(1, key="magic")


class TestETBuilder:
    def test_validate_clean_trace(self, captured_runtime_pieces):
        assert ETBuilder.validate(captured_runtime_pieces["trace"]) == []

    def test_validate_detects_missing_parent_and_duplicates(self):
        trace = ExecutionTrace()
        trace.add_node(ETNode(name="[root]", id=ROOT_NODE_ID, parent=0))
        trace.add_node(node("aten::mm", 5, 99))
        trace.add_node(node("aten::mm", 5, ROOT_NODE_ID))
        issues = {issue.kind for issue in ETBuilder.validate(trace)}
        assert "missing_parent" in issues
        assert "duplicate_id" in issues

    def test_preprocess_reparents_orphans(self):
        trace = ExecutionTrace()
        trace.add_node(ETNode(name="[root]", id=ROOT_NODE_ID, parent=0))
        trace.add_node(node("aten::mm", 5, 99))
        cleaned = ETBuilder.preprocess(trace)
        assert cleaned.get(5).parent == ROOT_NODE_ID
        assert ETBuilder.validate(cleaned) == []

    def test_extract_subtrace(self, captured_runtime_pieces):
        sub = ETBuilder.extract_subtrace(captured_runtime_pieces["trace"], "## forward ##")
        names = [n.name for n in sub.sorted_nodes()]
        assert any("forward" in name for name in names)
        assert all("autograd" not in name for name in names)
        assert sub.metadata["subtrace_label"] == "## forward ##"

    def test_extract_missing_label_raises(self, captured_runtime_pieces):
        with pytest.raises(KeyError):
            ETBuilder.extract_subtrace(captured_runtime_pieces["trace"], "## does not exist ##")

    def test_filter_by_category(self, captured_runtime_pieces):
        filtered = ETBuilder.filter_by_category(captured_runtime_pieces["trace"], [CATEGORY_ATEN])
        assert all(
            categorize_node(n) == CATEGORY_ATEN
            for n in filtered.operators()
        )

    def test_compose_renumbers_ids(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        composed = ETBuilder.compose([trace, trace], name="double")
        assert len(composed) == 2 * (len(trace) - 1) + 1
        ids = [n.id for n in composed.sorted_nodes()]
        assert len(set(ids)) == len(ids)
        assert ETBuilder.validate(composed) == []

    def test_composed_trace_has_twice_the_operators(self, captured_runtime_pieces):
        trace = captured_runtime_pieces["trace"]
        composed = ETBuilder.compose([trace, trace])
        assert len(iter_top_level_operators(composed)) == 2 * len(iter_top_level_operators(trace))


class TestComparator:
    def test_relative_error(self):
        assert relative_error(100.0, 110.0) == pytest.approx(0.10)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(0.0, 5.0) == float("inf")

    def test_compare_metrics(self):
        comparator = TraceComparator()
        report = comparator.compare_metrics(
            {"execution_time_ms": 10.0, "sm_utilization_pct": 80.0},
            {"execution_time_ms": 10.5, "sm_utilization_pct": 76.0},
        )
        assert report.execution_time_error == pytest.approx(0.05)
        assert report.metric_errors["sm_utilization_pct"] == pytest.approx(0.05)
        assert report.passes(threshold=0.10)
        assert not report.passes(threshold=0.01)

    def test_similarity_score_bounds(self):
        perfect = SimilarityReport(execution_time_error=0.0)
        bad = SimilarityReport(execution_time_error=1.5, metric_errors={"x": 2.0})
        assert perfect.similarity_score() == pytest.approx(1.0)
        assert 0.0 <= bad.similarity_score() < 0.5

    def test_compare_operator_times_top_k(self):
        comparator = TraceComparator()
        original = {"a": 100.0, "b": 50.0, "c": 1.0}
        replay = {"a": 95.0, "b": 55.0, "c": 100.0}
        report = comparator.compare_operator_times(original, replay, top_k=2)
        assert set(report.per_operator_errors) == {"a", "b"}
        assert report.mean_operator_error < 0.15
