"""Tests for the benchmark harness, metric post-processing and reporting."""

import pytest

from repro.bench.harness import compare_workload, capture_workload, run_original, replay_capture
from repro.bench.metrics import (
    kernel_counters_by_name,
    normalize_to,
    operator_gpu_time_breakdown,
    top_kernel_names,
)
from repro.bench.reporting import MLPERF_TRAINING_BENCHMARKS, format_series, format_table
from repro.core.registry import ReplaySupport
from repro.hardware.specs import A100
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from tests.conftest import make_small_rm


def small_linear():
    return ParamLinearWorkload(
        ParamLinearConfig(batch_size=64, num_layers=3, hidden_size=256, input_size=256)
    )


class TestHarness:
    def test_run_original_multiple_iterations(self):
        result = run_original(small_linear(), iterations=3, warmup_iterations=1)
        assert len(result.iteration_times_us) == 3
        assert result.mean_iteration_time_ms > 0
        assert result.kernel_launches

    def test_capture_contains_all_artifacts(self):
        capture = capture_workload(small_linear(), warmup_iterations=1)
        assert len(capture.execution_trace) > 10
        assert capture.profiler_trace.kernels()
        assert capture.iteration_time_us > 0
        assert capture.system_metrics.gpu_power_w > 0

    def test_capture_excludes_warmup_kernels(self):
        with_warmup = capture_workload(small_linear(), warmup_iterations=2)
        without = capture_workload(small_linear(), warmup_iterations=0)
        assert len(with_warmup.kernel_launches) == len(without.kernel_launches)

    def test_replay_capture_roundtrip(self):
        capture = capture_workload(small_linear(), warmup_iterations=0)
        replay = replay_capture(capture)
        assert replay.mean_iteration_time_us == pytest.approx(capture.iteration_time_us, rel=0.10)

    def test_compare_workload_full_coverage(self):
        comparison = compare_workload(small_linear())
        assert comparison.coverage_count == pytest.approx(1.0)
        assert comparison.original_time_excl_unsupported_us == pytest.approx(comparison.original_time_us)
        assert comparison.replay_error < 0.10

    def test_compare_workload_with_unsupported_ops(self):
        comparison = compare_workload(make_small_rm())
        assert comparison.coverage_count < 1.0
        assert comparison.original_time_excl_unsupported_us < comparison.original_time_us
        assert comparison.replay_error < 0.20

    def test_compare_workload_with_extended_support(self, small_asr):
        support = ReplaySupport()
        support.register_library("fairseq")
        capture = capture_workload(small_asr, warmup_iterations=0)
        default = compare_workload(small_asr, capture=capture)
        extended = compare_workload(small_asr, capture=capture, support=support)
        assert extended.coverage_time > default.coverage_time


class TestMetricPostprocessing:
    def test_kernel_counters_by_name(self):
        capture = capture_workload(small_linear(), warmup_iterations=0)
        counters = kernel_counters_by_name(capture.kernel_launches, A100)
        assert counters
        gemm_names = [name for name in counters if "sgemm" in name]
        assert gemm_names
        for counter in counters.values():
            assert 0 <= counter.l1_hit_rate <= 1
            assert counter.duration_us > 0

    def test_top_kernel_names_ordering(self):
        capture = capture_workload(small_linear(), warmup_iterations=0)
        top = top_kernel_names(capture.kernel_launches, top_k=3)
        counters = kernel_counters_by_name(capture.kernel_launches, A100)
        durations = [counters[name].duration_us for name in top]
        assert durations == sorted(durations, reverse=True)
        assert len(top) <= 3

    def test_operator_gpu_time_breakdown(self):
        capture = capture_workload(small_linear(), warmup_iterations=0)
        breakdown = operator_gpu_time_breakdown(capture.kernel_launches)
        assert "aten::addmm" in breakdown or "aten::linear" in breakdown
        assert all(value > 0 for value in breakdown.values())

    def test_normalize_to(self):
        normalized = normalize_to({"a": 10.0, "b": 0.0}, {"a": 9.0, "b": 0.0})
        assert normalized["a"] == pytest.approx(0.9)
        assert normalized["b"] == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["model", "time"], [["resnet", 64.4], ["rm", 65.9]], title="Table 4")
        lines = text.splitlines()
        assert lines[0] == "Table 4"
        assert "model" in lines[1]
        assert "resnet" in lines[3]
        assert "64.400" in text

    def test_format_series(self):
        text = format_series(
            {"Original": {100: 0.5, 200: 0.8}, "Replay": {100: 0.52, 200: 0.79}},
            x_label="power limit",
        )
        assert "power limit" in text
        assert "Original" in text and "Replay" in text
        assert "0.520" in text

    def test_mlperf_table_contents(self):
        models = {entry["model"] for entry in MLPERF_TRAINING_BENCHMARKS}
        assert {"ResNet-50", "BERT-large", "DLRM"} <= models
        assert len(MLPERF_TRAINING_BENCHMARKS) == 7
        assert all("last_updated" in entry for entry in MLPERF_TRAINING_BENCHMARKS)
