"""Tests for the ``python -m repro`` CLI (repro.service.cli).

Includes the acceptance scenario: a sweep over >= 3 traces x >= 2 device
configs runs through the worker pool, and a second identical invocation is
served entirely from the result cache (no re-replay).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.harness import capture_workload
from repro.service import TraceRepository
from repro.service.cli import main
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from repro.workloads.resnet import ResNetConfig, ResNetWorkload
from repro.workloads.rm import RMConfig, RMWorkload


@pytest.fixture(scope="module")
def cli_repo_dir(tmp_path_factory) -> Path:
    """Repository of three different small workload traces."""
    root = tmp_path_factory.mktemp("cli_traces")
    repo = TraceRepository(root)
    workloads = [
        ParamLinearWorkload(
            ParamLinearConfig(batch_size=16, num_layers=2, hidden_size=64, input_size=64)
        ),
        ResNetWorkload(ResNetConfig(batch_size=2, image_size=32, num_classes=10, blocks_per_stage=1)),
        RMWorkload(
            RMConfig(
                batch_size=8,
                num_tables=2,
                rows_per_table=1000,
                embedding_dim=8,
                pooling_factor=2,
                bottom_mlp=(16, 8),
                top_mlp=(16, 8),
            )
        ),
    ]
    for workload in workloads:
        capture = capture_workload(workload, warmup_iterations=0)
        repo.add(workload.name, capture.execution_trace)
    return root


class TestListTraces:
    def test_table_output(self, cli_repo_dir, capsys):
        assert main(["list-traces", "--repo", str(cli_repo_dir)]) == 0
        out = capsys.readouterr().out
        for name in ("param_linear", "resnet", "rm"):
            assert name in out

    def test_json_output(self, cli_repo_dir, capsys):
        assert main(["list-traces", "--repo", str(cli_repo_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        traces = payload["traces"]
        assert len(traces) == 3
        assert {entry["workload"] for entry in traces} == {"param_linear", "resnet", "rm"}
        assert all(len(entry["digest"]) == 64 for entry in traces)
        assert payload["invalid"] == {}

    def test_json_output_reports_invalid_files(self, cli_repo_dir, capsys):
        junk = cli_repo_dir / "junk.json"
        junk.write_text("{ not json")
        try:
            assert main(["list-traces", "--repo", str(cli_repo_dir), "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert len(payload["traces"]) == 3
            assert str(junk) in payload["invalid"]
        finally:
            junk.unlink()


class TestReplayCommand:
    def test_replay_single_trace(self, cli_repo_dir, capsys):
        code = main(
            ["replay", "--repo", str(cli_repo_dir), "--trace", "param_linear", "--device", "V100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "param_linear@V100" in out
        assert "replayed" in out

    def test_replay_unknown_trace_fails(self, cli_repo_dir, capsys):
        code = main(["replay", "--repo", str(cli_repo_dir), "--trace", "nope"])
        assert code == 1
        assert "no trace named" in capsys.readouterr().err


class TestSweepAcceptance:
    def test_sweep_then_cached_sweep(self, cli_repo_dir, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "cache"
        argv = [
            "sweep",
            "--repo", str(cli_repo_dir),
            "--cache", str(cache_dir),
            "--device", "A100",
            "--device", "NewPlatform",
            "--workers", "2",
            "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        # >= 3 traces x >= 2 device configs, all through the worker pool.
        assert payload["replayed"] == 6
        assert payload["cached"] == 0
        assert payload["failed"] == 0
        assert len(payload["jobs"]) == 6
        assert {job["device"] for job in payload["jobs"]} == {"A100", "NewPlatform"}

        # Second invocation: must complete via cache hits with no re-replay.
        import repro.service.batch as batch_module

        def _no_replay(*args, **kwargs):
            raise AssertionError("replay executed despite warm cache")

        monkeypatch.setattr(batch_module, "_execute_job", _no_replay)
        monkeypatch.setattr(batch_module, "_replay_trace", _no_replay)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["replayed"] == 0
        assert second["cached"] == 6
        assert second["failed"] == 0
        # Cached summaries carry the same measurements as the fresh run.
        first_times = {job["label"]: job["summary"]["mean_iteration_time_us"] for job in payload["jobs"]}
        second_times = {job["label"]: job["summary"]["mean_iteration_time_us"] for job in second["jobs"]}
        assert first_times == second_times

    def test_sweep_with_axes(self, cli_repo_dir, capsys):
        code = main(
            [
                "sweep",
                "--repo", str(cli_repo_dir),
                "--trace", "param_linear",
                "--device", "A100",
                "--power-limit", "250",
                "--power-limit", "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "power_limit_w=250.0" in out
        assert "power_limit_w=400.0" in out

    def test_empty_repo_fails_cleanly(self, tmp_path, capsys):
        code = main(["sweep", "--repo", str(tmp_path / "empty")])
        assert code == 1
        assert "no traces to sweep" in capsys.readouterr().err


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, cli_repo_dir):
        """``python -m repro`` works as an actual subprocess."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list-traces", "--repo", str(cli_repo_dir)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "param_linear" in proc.stdout
