"""Unit tests for the operator-schema parser (repro.torchsim.ops.schema)."""

import pytest

from repro.torchsim.ops.schema import OperatorSchema, SchemaArg, parse_schema


class TestParseSimpleSchemas:
    def test_single_tensor_arg(self):
        schema = parse_schema("aten::relu(Tensor self) -> Tensor")
        assert schema.namespace == "aten"
        assert schema.name == "relu"
        assert schema.overload == ""
        assert schema.qualified_name == "aten::relu"
        assert len(schema.args) == 1
        assert schema.args[0].name == "self"
        assert schema.args[0].is_tensor
        assert schema.returns == ("Tensor",)

    def test_overload_parsed(self):
        schema = parse_schema("aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor")
        assert schema.overload == "Tensor"
        assert schema.full_name == "aten::add.Tensor"
        assert schema.qualified_name == "aten::add"

    def test_kwarg_only_marker(self):
        schema = parse_schema("aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor")
        assert not schema.args[0].kwarg_only
        assert not schema.args[1].kwarg_only
        assert schema.args[2].kwarg_only
        assert schema.args[2].default == "1"
        assert schema.kwarg_only_args == (schema.args[2],)
        assert schema.positional_args == schema.args[:2]

    def test_defaults_captured(self):
        schema = parse_schema("aten::dropout(Tensor input, float p=0.5, bool train=True) -> Tensor")
        assert schema.args[1].default == "0.5"
        assert schema.args[2].default == "True"

    def test_optional_tensor_arg(self):
        schema = parse_schema("aten::linear(Tensor input, Tensor weight, Tensor? bias=None) -> Tensor")
        assert schema.args[2].is_optional
        assert schema.args[2].is_tensor

    def test_multiple_returns(self):
        schema = parse_schema(
            "aten::convolution_backward(Tensor grad_output, Tensor input, Tensor weight, int[] stride, int[] padding, int groups) -> (Tensor, Tensor, Tensor)"
        )
        assert schema.returns == ("Tensor", "Tensor", "Tensor")

    def test_tensor_list_arg(self):
        schema = parse_schema("aten::cat(Tensor[] tensors, int dim=0) -> Tensor")
        assert schema.args[0].is_tensor_list

    def test_bracketed_int_list_type(self):
        schema = parse_schema("aten::max_pool2d(Tensor self, int[2] kernel_size, int[2] stride=1) -> Tensor")
        assert schema.args[1].type == "int[2]"
        assert schema.args[1].name == "kernel_size"

    def test_namespace_other_than_aten(self):
        schema = parse_schema("fbgemm::dense_to_jagged(Tensor dense, Tensor lengths) -> Tensor")
        assert schema.namespace == "fbgemm"

    def test_string_default(self):
        schema = parse_schema('c10d::all_reduce(Tensor[] tensors, str reduce_op="sum") -> Tensor[]')
        assert schema.args[1].default == '"sum"'


class TestParseErrors:
    def test_missing_namespace_rejected(self):
        with pytest.raises(ValueError):
            parse_schema("relu(Tensor self) -> Tensor")

    def test_empty_string_rejected(self):
        with pytest.raises(ValueError):
            parse_schema("")

    def test_annotation_node_name_rejected(self):
        with pytest.raises(ValueError):
            parse_schema("## forward ##")

    def test_missing_return_rejected(self):
        with pytest.raises(ValueError):
            parse_schema("aten::relu(Tensor self)")


class TestSchemaRoundTrip:
    @pytest.mark.parametrize(
        "schema_str",
        [
            "aten::relu(Tensor self) -> Tensor",
            "aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor",
            "aten::cat(Tensor[] tensors, int dim=0) -> Tensor",
            "aten::mm(Tensor self, Tensor mat2) -> Tensor",
        ],
    )
    def test_to_string_reparses_identically(self, schema_str):
        first = parse_schema(schema_str)
        second = parse_schema(first.to_string())
        assert first == second

    def test_to_string_contains_star_for_kwarg_only(self):
        schema = parse_schema("aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor")
        assert "*" in schema.to_string()
