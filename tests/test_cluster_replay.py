"""Tests for the multi-rank distributed replay engine (``repro.cluster``).

Covers the rendezvous matching/pricing semantics, the pre-flight fleet
match, the engine's aggregation (exposed-comm time, stall, critical path),
the single-replica equivalence with the single-rank pipeline, straggler
modelling, the ``repro.api.replay_cluster`` facade, and the
``python -m repro replay-dist`` CLI — including the 4-rank DDP smoke
replay the acceptance criteria call for.
"""

from __future__ import annotations

import copy
import json
from dataclasses import replace as dataclass_replace

import pytest

import repro.api as api
from repro.bench.aggregate import format_cluster_report
from repro.bench.harness import compare_distributed
from repro.cluster import (
    ClusterMatchError,
    ClusterReplayer,
    CollectiveSyncError,
    match_collectives,
)
from repro.cluster.rendezvous import EventRendezvous, RankBlocked, normalize_op
from repro.core.pipeline import run_replay
from repro.core.replayer import ReplayConfig
from repro.et.analyzer import CATEGORY_COMMS, categorize_node
from repro.hardware.network import CollectiveCostModel, InterconnectSpec
from repro.service.cli import main as cli_main
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.runtime import Runtime
from repro.workloads.ddp import DistributedRunner
from tests.conftest import make_small_rm

WORLD = 4


@pytest.fixture(scope="module")
def fleet_captures():
    """One 4-rank DDP-RM capture set, shared across the module's tests."""
    runner = DistributedRunner(
        lambda rank, world: make_small_rm(rank=rank, world_size=world),
        world_size=WORLD,
    )
    return runner.run()


@pytest.fixture
def fleet_traces(fleet_captures):
    return [capture.execution_trace for capture in fleet_captures]


# ----------------------------------------------------------------------
# Rendezvous
# ----------------------------------------------------------------------
class TestEventRendezvous:
    def make(self, participants=(0,)):
        return EventRendezvous(CollectiveCostModel(InterconnectSpec()), participants)

    def test_normalize_op(self):
        assert normalize_op("c10d::all_reduce") == "all_reduce"
        assert normalize_op("ALL_REDUCE") == "all_reduce"

    def test_sole_participant_resolves_immediately(self):
        rendezvous = self.make(participants=(0,))
        start, duration = rendezvous.sync(0, "all_reduce", range(8), 1 << 20, arrival_us=100.0)
        assert start == 100.0
        # Priced at the *recorded* group size, exactly as the single-rank
        # pipeline would price it.
        expected = CollectiveCostModel(InterconnectSpec()).collective_us(
            "all_reduce", float(1 << 20), 8
        )
        assert duration == pytest.approx(expected)

    def test_singleton_group_is_free(self):
        rendezvous = self.make(participants=(0, 1))
        start, duration = rendezvous.sync(0, "all_reduce", [0], 1 << 20, arrival_us=5.0)
        assert start == 5.0
        assert duration is None  # local no-op; the kernel model prices a memcpy

    def test_two_participants_release_at_common_time(self):
        """The event discipline: the first arrival parks (RankBlocked), the
        last arrival resolves the slot, ``take_ready`` names it, and the
        parked rank's retry reads the same (start, duration) release."""
        rendezvous = self.make(participants=(0, 1))
        with pytest.raises(RankBlocked) as blocked:
            rendezvous.sync(0, "all_reduce", [0, 1], 1 << 20, arrival_us=10.0)
        assert rendezvous.take_ready() == []  # nothing resolved yet
        last = rendezvous.sync(1, "all_reduce", [0, 1], 1 << 20, arrival_us=50.0)
        assert rendezvous.take_ready() == [blocked.value.slot]
        retried = rendezvous.sync(0, "all_reduce", [0, 1], 1 << 20, arrival_us=10.0)
        assert retried == last
        start, duration = retried
        assert start == 50.0  # the slowest participant's arrival
        assert duration is not None and duration > 0
        stats = rendezvous.stats()
        assert stats.matched == 1
        assert stats.max_skew_us == pytest.approx(40.0)
        assert stats.stall_us_by_rank[0] == pytest.approx(40.0)
        assert stats.stall_us_by_rank[1] == pytest.approx(0.0)

    def test_retired_participant_fails_waiters(self):
        rendezvous = self.make(participants=(0, 1))
        rendezvous.retire(1)
        with pytest.raises(CollectiveSyncError, match="finished their trace"):
            rendezvous.sync(0, "all_reduce", [0, 1], 1024, arrival_us=0.0)

    def test_fail_pending_breaks_deadlocks(self):
        """The scheduler's structural deadlock breaker: when every live
        cursor is parked, no slot can resolve — ``fail_pending`` fails them
        all so the retries surface a diagnosis instead of hanging."""
        rendezvous = self.make(participants=(0, 1))
        with pytest.raises(RankBlocked):
            rendezvous.sync(0, "all_reduce", [0, 1], 1024, arrival_us=0.0)
        rendezvous.fail_pending("every live cursor is parked")
        assert rendezvous.take_ready() != []
        with pytest.raises(CollectiveSyncError, match="cannot resolve"):
            rendezvous.sync(0, "all_reduce", [0, 1], 1024, arrival_us=0.0)


# ----------------------------------------------------------------------
# Pre-flight matching
# ----------------------------------------------------------------------
class TestMatchCollectives:
    def test_symmetric_fleet_fully_matches(self, fleet_traces):
        report = match_collectives(fleet_traces)
        assert report.ok
        assert report.unmatched == []
        assert report.matched > 0
        # Every rank records the same number of collectives.
        assert len(set(report.per_rank_counts.values())) == 1

    def test_missing_collective_is_reported(self, fleet_traces):
        tampered = [copy.deepcopy(trace) for trace in fleet_traces]
        victim = tampered[2]
        comm_ids = [n.id for n in victim.operators() if categorize_node(n) == CATEGORY_COMMS]
        victim.nodes = [n for n in victim.nodes if n.id != comm_ids[0]]
        report = match_collectives(tampered)
        assert not report.ok
        assert any("rank(s) [2]" in line for line in report.unmatched)

    def test_strict_engine_refuses_mismatched_fleet(self, fleet_traces):
        tampered = [copy.deepcopy(trace) for trace in fleet_traces]
        comm_ids = [
            n.id for n in tampered[0].operators() if categorize_node(n) == CATEGORY_COMMS
        ]
        tampered[0].nodes = [n for n in tampered[0].nodes if n.id != comm_ids[-1]]
        with pytest.raises(ClusterMatchError, match="cannot be matched"):
            ClusterReplayer(ReplayConfig(device="A100")).replay(tampered)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class TestClusterReplayer:
    def test_four_rank_ddp_smoke_replay(self, fleet_captures):
        """The acceptance-criteria scenario: a 4-rank DDP-RM fleet replays
        with every collective matched and the report fully populated."""
        report = ClusterReplayer(ReplayConfig(device="A100")).replay(fleet_captures)
        assert report.num_replicas == WORLD
        assert report.world_size == WORLD
        assert report.unmatched_collectives == 0
        assert report.matched_collectives > 0
        assert [r.rank for r in report.ranks] == list(range(WORLD))
        for rank in report.ranks:
            assert rank.summary.replayed_ops > 0
            assert rank.comm_time_us > 0
            assert rank.exposed_comm_us > 0  # per-rank exposed-comm time
            assert rank.exposed_comm_us <= rank.comm_time_us + 1e-9
        # Slowest-rank critical path.
        assert report.critical_path_us == max(
            r.mean_iteration_time_us for r in report.ranks
        )
        assert report.straggler_rank in range(WORLD)

    def test_world_size_one_cluster_equals_single_rank_pipeline(self, fleet_captures):
        """A one-replica cluster replay is result-identical to the
        existing single-rank ``ReplayPipeline`` run of the same trace."""
        capture = fleet_captures[1]
        single = run_replay(
            capture.execution_trace,
            config=dataclass_replace(ReplayConfig(device="A100"), rank=capture.rank),
            profiler_trace=capture.profiler_trace,
        )
        cluster = ClusterReplayer(ReplayConfig(device="A100")).replay([capture])
        assert cluster.num_replicas == 1
        assert cluster.ranks[0].summary == single.summarize()

    def test_deterministic_across_runs(self, fleet_captures):
        replayer = ClusterReplayer(ReplayConfig(device="A100"))
        first = replayer.replay(fleet_captures)
        second = ClusterReplayer(ReplayConfig(device="A100")).replay(fleet_captures)
        assert first.to_dict() == second.to_dict()

    def test_straggler_override_shows_up_in_stall_and_critical_path(self, fleet_captures):
        base = ClusterReplayer(ReplayConfig(device="A100")).replay(fleet_captures)
        slow = ClusterReplayer(ReplayConfig(device="A100")).replay(
            fleet_captures, rank_overrides={0: {"device": "V100"}}
        )
        assert slow.straggler_rank == 0
        assert slow.critical_path_us > base.critical_path_us
        assert slow.max_skew_us > 0
        # The fast ranks stall inside the rendezvous waiting for rank 0.
        for rank in slow.ranks:
            if rank.rank != 0:
                assert rank.stall_us > 0

    def test_fleet_from_saved_traces_on_disk(self, fleet_captures, tmp_path):
        paths = DistributedRunner.save_captures(fleet_captures, tmp_path)
        assert len(paths) == WORLD
        from_disk = ClusterReplayer(ReplayConfig(device="A100")).replay(
            ClusterReplayer.load_fleet(tmp_path)
        )
        in_memory = ClusterReplayer(ReplayConfig(device="A100")).replay(
            [c.execution_trace for c in fleet_captures]
        )
        assert from_disk.to_dict() == in_memory.to_dict()

    def test_report_to_dict_and_formatting(self, fleet_captures):
        report = ClusterReplayer(ReplayConfig(device="A100")).replay(fleet_captures)
        data = report.to_dict()
        for key in (
            "critical_path_us",
            "straggler_rank",
            "mean_exposed_comm_us",
            "matched_collectives",
            "unmatched_collectives",
            "ranks",
        ):
            assert key in data
        json.dumps(data)  # JSON-serialisable throughout
        text = format_cluster_report(report)
        assert "critical path" in text
        assert "exposed_comm_ms" in text

    # ------------------------------------------------------------------
    # Error paths
    # ------------------------------------------------------------------
    def test_empty_fleet_is_rejected(self):
        with pytest.raises(ClusterMatchError, match="empty fleet"):
            ClusterReplayer().replay([])

    def test_duplicate_ranks_are_rejected(self, fleet_traces):
        with pytest.raises(ClusterMatchError, match="duplicate ranks"):
            ClusterReplayer().replay([fleet_traces[0], fleet_traces[0]])

    def test_serial_backend_rejects_multi_rank_fleets(self, fleet_traces):
        with pytest.raises(ValueError, match="serial"):
            ClusterReplayer(backend="serial").replay(fleet_traces)

    def test_unknown_rank_override_is_rejected(self, fleet_traces):
        with pytest.raises(ClusterMatchError, match="rank_overrides"):
            ClusterReplayer().replay(fleet_traces, rank_overrides={9: {"device": "V100"}})

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ClusterReplayer(backend="process")

    def test_world_smaller_than_fleet_is_rejected(self, fleet_traces):
        """A world that cannot cover the fleet's ranks would clamp replicas
        onto each other and deadlock the rendezvous — refuse it up front."""
        with pytest.raises(ClusterMatchError, match="cannot cover fleet ranks"):
            ClusterReplayer(ReplayConfig(device="A100", world_size=2)).replay(fleet_traces)

    def test_single_replica_failure_raises_cluster_replay_error(self, fleet_traces):
        """The one-replica fast path reports failures through the same
        ClusterReplayError contract as the pooled path (the CLI relies on it)."""
        from repro.cluster import ClusterReplayError

        with pytest.raises(ClusterReplayError, match="rank 0"):
            ClusterReplayer(ReplayConfig(device="NoSuchDevice")).replay([fleet_traces[0]])

    def test_warmup_iterations_do_not_inflate_rendezvous_stats(self, fleet_captures):
        """Stall/skew/matched are windowed to the measured region, like
        every other reported metric: extra warm-up iterations must not
        change the measured collective count, and the steady-state stall
        is independent of how many warm-ups preceded it."""
        overrides = {0: {"device": "V100"}}
        cold = ClusterReplayer(ReplayConfig(device="A100", iterations=1)).replay(
            fleet_captures, rank_overrides=overrides
        )
        warm_counts = {}
        warm_stalls = {}
        for warmups in (1, 2):
            report = ClusterReplayer(
                ReplayConfig(device="A100", iterations=1, warmup_iterations=warmups)
            ).replay(fleet_captures, rank_overrides=overrides)
            warm_counts[warmups] = report.matched_collectives
            warm_stalls[warmups] = {r.rank: r.stall_us for r in report.ranks}
        # Same number of *measured* collectives no matter the warm-up count.
        assert warm_counts[1] == warm_counts[2] == cold.matched_collectives
        # Steady state: a second warm-up changes nothing measured.
        for rank in range(WORLD):
            assert warm_stalls[1][rank] == pytest.approx(warm_stalls[2][rank])


# ----------------------------------------------------------------------
# Singleton-collective pricing (remap degenerate case)
# ----------------------------------------------------------------------
class TestSingletonCollectivePricing:
    def _all_reduce_duration(self, pg, world_size=WORLD) -> float:
        dist = DistributedContext(rank=0, world_size=world_size) if world_size > 1 else None
        runtime = Runtime("A100", dist=dist)
        from repro.torchsim.tensor import Tensor

        runtime.call("c10d::all_reduce", [Tensor.empty((1024, 1024))], "sum", pg, False)
        (launch,) = [k for k in runtime.gpu.launches if k.desc.name.startswith("nccl")]
        return launch.duration

    def test_singleton_group_prices_as_local_noop(self):
        """A recorded group folded onto one rank pays no alpha-beta cost:
        it is priced exactly like the world-size-1 local no-op, not through
        the interconnect model."""
        singleton = self._all_reduce_duration({"ranks": [0], "backend": "nccl"})
        local_noop = self._all_reduce_duration(None, world_size=1)
        assert singleton == pytest.approx(local_noop)
        full = self._all_reduce_duration({"ranks": list(range(WORLD)), "backend": "nccl"})
        priced = CollectiveCostModel(InterconnectSpec()).all_reduce_us(
            float(1024 * 1024 * 4), WORLD
        )
        assert full == pytest.approx(priced)

    def test_remapped_replay_to_world_one_still_replays(self, fleet_captures):
        """remap_world_size=1 folds every group to a singleton; the replay
        must complete with comms priced as free local no-ops."""
        capture = fleet_captures[0]
        result = run_replay(
            capture.execution_trace,
            config=ReplayConfig(device="A100", world_size=1, remap_world_size=1),
        )
        assert result.replayed_ops > 0


# ----------------------------------------------------------------------
# Process-group index
# ----------------------------------------------------------------------
class TestGroupIndex:
    def test_group_for_description_is_find_or_create(self):
        dist = DistributedContext(rank=0, world_size=8)
        description = {"ranks": [0, 2, 4, 6], "backend": "nccl"}
        first = dist.group_for_description(description)
        second = dist.group_for_description(description)
        assert first is second
        assert dist.group_for_description({"ranks": [0, 2, 4, 6], "backend": "gloo"}) is not first

    def test_default_group_resolves_through_index(self):
        dist = DistributedContext(rank=0, world_size=8)
        resolved = dist.group_for_description({"ranks": list(range(8)), "backend": "nccl"})
        assert resolved is dist.default_group

    def test_many_groups_still_resolve_each_exactly(self):
        dist = DistributedContext(rank=0, world_size=64)
        created = [dist.new_group([r, r + 32]) for r in range(32)]
        for rank, group in enumerate(created):
            found = dist.group_for_description(
                {"ranks": [rank, rank + 32], "backend": "nccl"}
            )
            assert found is group


# ----------------------------------------------------------------------
# api facade
# ----------------------------------------------------------------------
class TestReplayClusterFacade:
    def test_fluent_session_matches_engine(self, fleet_captures):
        via_api = api.replay_cluster(fleet_captures).on("A100").run()
        via_engine = ClusterReplayer(ReplayConfig(device="A100")).replay(fleet_captures)
        assert via_api.to_dict() == via_engine.to_dict()

    def test_world_override_reprices_collectives(self, fleet_captures):
        small = api.replay_cluster(fleet_captures).on("A100").run()
        # Price the same fleet as if the groups ran at 64 ranks: the
        # recorded groups stay as-is, but each replica's distributed
        # context (and cost model) sees the bigger world.
        big = api.replay_cluster(fleet_captures).on("A100").world(64).run()
        assert big.world_size == 64
        assert small.world_size == WORLD

    def test_configure_rank_builds_rank_overrides(self, fleet_captures):
        report = (
            api.replay_cluster(fleet_captures)
            .on("A100")
            .configure_rank(0, device="V100")
            .run()
        )
        assert report.straggler_rank == 0

    def test_session_accepts_directory_source(self, fleet_captures, tmp_path):
        DistributedRunner.save_captures(fleet_captures, tmp_path)
        report = api.replay_cluster(tmp_path).on("A100").iterations(1).run()
        assert report.num_replicas == WORLD
        assert report.unmatched_collectives == 0


# ----------------------------------------------------------------------
# bench harness
# ----------------------------------------------------------------------
class TestCompareDistributed:
    def test_table5_style_comparison(self):
        comparison = compare_distributed(
            lambda rank, world: make_small_rm(rank=rank, world_size=world),
            world_size=WORLD,
            device="A100",
        )
        assert comparison.world_size == WORLD
        assert comparison.ranks_simulated == WORLD
        assert comparison.report.unmatched_collectives == 0
        for key, error in comparison.replay_error.items():
            assert error < 0.15, key


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestReplayDistCli:
    def test_replay_dist_table_output(self, fleet_captures, tmp_path, capsys):
        DistributedRunner.save_captures(fleet_captures, tmp_path)
        exit_code = cli_main(["replay-dist", str(tmp_path), "--device", "A100"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "critical path" in out
        assert "4 replica(s)" in out

    def test_replay_dist_json_output(self, fleet_captures, tmp_path, capsys):
        DistributedRunner.save_captures(fleet_captures, tmp_path)
        exit_code = cli_main(["replay-dist", str(tmp_path), "--json", "-n", "1"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["num_replicas"] == WORLD
        assert payload["unmatched_collectives"] == 0
        assert len(payload["ranks"]) == WORLD

    def test_replay_dist_empty_directory_fails_cleanly(self, tmp_path, capsys):
        exit_code = cli_main(["replay-dist", str(tmp_path)])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err

    def test_version_subcommand(self, capsys):
        from repro.version import __version__

        assert cli_main(["version"]) == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"
