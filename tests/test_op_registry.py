"""Unit tests for the operator registry."""

import pytest

from repro.torchsim.kernel import OpCategory
from repro.torchsim.ops.registry import OperatorDef, OperatorRegistry, global_registry, register_op


def _noop(ctx, *args, **kwargs):
    return None


class TestOperatorRegistry:
    def test_register_and_get(self):
        registry = OperatorRegistry()
        op = OperatorDef(name="aten::foo", schema_str="aten::foo(Tensor self) -> Tensor",
                         category=OpCategory.ATEN, fn=_noop)
        registry.register(op)
        assert registry.has("aten::foo")
        assert registry.get("aten::foo") is op

    def test_duplicate_registration_rejected(self):
        registry = OperatorRegistry()
        op = OperatorDef(name="aten::foo", schema_str="aten::foo(Tensor self) -> Tensor",
                         category=OpCategory.ATEN, fn=_noop)
        registry.register(op)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(op)

    def test_duplicate_allowed_with_overwrite(self):
        registry = OperatorRegistry()
        op = OperatorDef(name="aten::foo", schema_str="aten::foo(Tensor self) -> Tensor",
                         category=OpCategory.ATEN, fn=_noop)
        registry.register(op)
        registry.register(op, overwrite=True)
        assert len(registry) == 1

    def test_unknown_op_raises_keyerror(self):
        registry = OperatorRegistry()
        with pytest.raises(KeyError):
            registry.get("aten::missing")

    def test_library_defaults_to_namespace(self):
        op = OperatorDef(name="fbgemm::bar", schema_str="fbgemm::bar(Tensor x) -> Tensor",
                         category=OpCategory.CUSTOM, fn=_noop)
        assert op.library == "fbgemm"

    def test_by_category_and_library(self):
        registry = OperatorRegistry()
        registry.register(OperatorDef(name="aten::a", schema_str="aten::a(Tensor x) -> Tensor",
                                      category=OpCategory.ATEN, fn=_noop))
        registry.register(OperatorDef(name="c10d::b", schema_str="c10d::b(Tensor x) -> Tensor",
                                      category=OpCategory.COMM, fn=_noop))
        assert [op.name for op in registry.by_category(OpCategory.COMM)] == ["c10d::b"]
        assert [op.name for op in registry.by_library("aten")] == ["aten::a"]

    def test_register_op_decorator(self):
        registry = OperatorRegistry()

        @register_op("test::scale(Tensor self, float factor) -> Tensor", registry=registry)
        def scale(ctx, self, factor):
            return self

        assert registry.has("test::scale")
        assert registry.get("test::scale").schema.args[1].name == "factor"


class TestGlobalRegistryContents:
    """The built-in operator library registered on import."""

    @pytest.mark.parametrize(
        "name",
        [
            "aten::linear", "aten::addmm", "aten::mm", "aten::bmm", "aten::relu",
            "aten::conv2d", "aten::convolution", "aten::batch_norm", "aten::max_pool2d",
            "aten::embedding_bag", "aten::cat", "aten::mse_loss", "aten::_foreach_add_",
            "c10d::all_reduce", "c10d::all_to_all", "c10d::all_gather", "c10d::broadcast",
            "fused::TensorExprGroup",
            "fbgemm::split_embedding_codegen_lookup_function",
            "fairseq::lstm_layer",
            "internal::sparse_data_preproc",
        ],
    )
    def test_builtin_operator_registered(self, name):
        assert global_registry.has(name)

    def test_comm_ops_have_comm_category(self):
        assert global_registry.get("c10d::all_reduce").category == OpCategory.COMM

    def test_custom_ops_have_custom_category(self):
        assert global_registry.get("fairseq::lstm_layer").category == OpCategory.CUSTOM

    def test_registry_has_reasonable_size(self):
        # The built-in library should cover the operators the workloads use.
        assert len(global_registry) >= 40
