"""Tests for scaled-down emulation and standalone benchmark generation."""

import subprocess
import sys

import pytest

from repro.core.generator import BenchmarkGenerator
from repro.core.replayer import ReplayConfig
from repro.core.scaledown import ScaleDownConfig, ScaleDownEmulator
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.runtime import Runtime
from repro.bench.harness import capture_workload
from tests.conftest import make_small_rm


def distributed_captures(world_size=8, ranks=2):
    captures = []
    for rank in range(ranks):
        dist = DistributedContext(rank=rank, world_size=world_size)
        runtime = Runtime("A100", rank=rank, dist=dist)
        workload = make_small_rm(rank=rank, world_size=world_size)
        capture = capture_workload(workload, warmup_iterations=0, runtime=runtime)
        capture.execution_trace.metadata["world_size"] = world_size
        captures.append(capture)
    return captures


class TestScaleDownConfig:
    def test_invalid_ranks_rejected(self):
        with pytest.raises(ValueError):
            ScaleDownConfig(emulated_world_size=8, replay_ranks=0)
        with pytest.raises(ValueError):
            ScaleDownConfig(emulated_world_size=2, replay_ranks=4)


class TestScaleDownEmulator:
    def test_as_recorded_scale_reproduces_time(self):
        captures = distributed_captures(world_size=8, ranks=2)
        emulator = ScaleDownEmulator(ScaleDownConfig(emulated_world_size=8, replay_ranks=2))
        outcome = emulator.emulate(
            [c.execution_trace for c in captures], [c.profiler_trace for c in captures]
        )
        original = sum(c.iteration_time_us for c in captures) / len(captures)
        assert outcome["estimated_iteration_time_us"] == pytest.approx(original, rel=0.25)
        assert outcome["replay_ranks"] == 2
        assert len(outcome["per_rank_results"]) == 2

    def test_delay_scale_identity_when_scales_match(self):
        captures = distributed_captures(world_size=8, ranks=1)
        emulator = ScaleDownEmulator(ScaleDownConfig(emulated_world_size=8, replay_ranks=2))
        assert emulator.communication_delay_scale(captures[0].execution_trace, 8) == pytest.approx(1.0)

    def test_delay_scale_grows_with_emulated_world_size(self):
        captures = distributed_captures(world_size=8, ranks=1)
        emulator = ScaleDownEmulator(ScaleDownConfig(emulated_world_size=64, replay_ranks=2))
        scale = emulator.communication_delay_scale(captures[0].execution_trace, 8)
        assert scale > 1.0

    def test_emulating_larger_scale_increases_time(self):
        captures = distributed_captures(world_size=8, ranks=1)
        same_scale = ScaleDownEmulator(ScaleDownConfig(emulated_world_size=8, replay_ranks=1))
        larger_scale = ScaleDownEmulator(ScaleDownConfig(emulated_world_size=64, replay_ranks=1))
        base = same_scale.emulate([captures[0].execution_trace], [captures[0].profiler_trace])
        scaled = larger_scale.emulate([captures[0].execution_trace], [captures[0].profiler_trace])
        assert scaled["estimated_iteration_time_us"] > base["estimated_iteration_time_us"]

    def test_single_gpu_trace_has_unit_delay_scale(self, small_linear_capture):
        emulator = ScaleDownEmulator(ScaleDownConfig(emulated_world_size=4, replay_ranks=2))
        assert emulator.communication_delay_scale(
            small_linear_capture.execution_trace, 4
        ) == pytest.approx(1.0)


class TestBenchmarkGenerator:
    def test_generate_source_is_valid_python(self, small_linear_capture):
        generator = BenchmarkGenerator(ReplayConfig(device="A100", iterations=2))
        source = generator.generate_source("param_linear", "et.json", "profiler.json")
        compile(source, "generated_benchmark.py", "exec")
        assert "ReplayConfig(" in source
        assert "param_linear" in source

    def test_write_emits_script_and_traces(self, small_linear_capture, tmp_path):
        generator = BenchmarkGenerator()
        artifacts = generator.write(
            tmp_path, "param_linear",
            small_linear_capture.execution_trace, small_linear_capture.profiler_trace,
        )
        assert artifacts.script_path.exists()
        assert artifacts.et_path.exists()
        assert artifacts.profiler_path is not None and artifacts.profiler_path.exists()

    def test_generated_benchmark_runs_standalone(self, small_linear_capture, tmp_path):
        generator = BenchmarkGenerator(ReplayConfig(iterations=1))
        artifacts = generator.write(
            tmp_path, "param_linear",
            small_linear_capture.execution_trace, small_linear_capture.profiler_trace,
        )
        completed = subprocess.run(
            [sys.executable, str(artifacts.script_path)],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "iteration time (ms)" in completed.stdout

    def test_write_without_profiler_trace(self, small_linear_capture, tmp_path):
        artifacts = BenchmarkGenerator().write(
            tmp_path, "no_profiler", small_linear_capture.execution_trace, None
        )
        assert artifacts.profiler_path is None
        assert artifacts.script_path.exists()
