"""Differential equivalence: event-driven scheduler vs legacy threaded engine.

The event engine (``ClusterReplayer(engine="event")``, the default) must be
*report-identical* to the thread-per-rank oracle it replaced — same virtual
times, same rendezvous stats, same cache digests — across world sizes,
workloads, straggler overrides, and memory tracking.  The legacy engine
stays behind ``engine="threaded"`` for one release precisely so this suite
can hold the two against each other field by field.

Also covers the satellites that ride along with the scheduler:

* the hierarchical topology model (``--topology`` presets) and its
  flat-model byte-compatibility when disabled;
* the ``replay-dist`` CLI flags (``--topology``, ``--world-size``,
  ``--engine``) including the ``--json`` round-trip through
  :mod:`repro.service.serialize`;
* the :class:`~repro.profiling.ProfileHook` attribution fix for
  single-threaded interleaving (``on_resume`` re-anchoring).
"""

from __future__ import annotations

import hashlib
import json
from types import SimpleNamespace

import pytest

import repro.api as api
from repro.bench.harness import capture_workload
from repro.cluster import ClusterReplayer
from repro.core.replayer import ReplayConfig
from repro.hardware.network import (
    CollectiveCostModel,
    HierarchicalTopology,
    InterconnectSpec,
    TopologyTier,
    topology_from_name,
)
from repro.profiling import ProfileHook
from repro.service import serialize
from repro.service.cli import main as cli_main
from repro.workloads.ddp import DistributedRunner
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from tests.conftest import make_small_rm


def _ddp_traces(world_size: int):
    runner = DistributedRunner(
        lambda rank, world: make_small_rm(rank=rank, world_size=world),
        world_size=world_size,
    )
    return [capture.execution_trace for capture in runner.run()]


@pytest.fixture(scope="module")
def ddp_fleet():
    """Lazily-built, module-cached DDP-RM trace fleets keyed by world size."""
    cache = {}

    def get(world_size: int):
        if world_size not in cache:
            cache[world_size] = _ddp_traces(world_size)
        return cache[world_size]

    return get


def _digest(report) -> str:
    """Canonical report digest: equality down to the last serialised byte."""
    payload = json.dumps(report.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _replay(traces, engine: str, config: ReplayConfig = None, **kwargs):
    replayer_kwargs = {k: kwargs.pop(k) for k in ("track_memory", "memory_budget") if k in kwargs}
    replayer = ClusterReplayer(
        config if config is not None else ReplayConfig(device="A100"),
        engine=engine,
        **replayer_kwargs,
    )
    return replayer.replay(traces, **kwargs)


# ----------------------------------------------------------------------
# Engine selection surface
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_event_engine_is_the_default(self):
        assert ClusterReplayer().engine == "event"

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            ClusterReplayer(engine="fibers")

    def test_serial_backend_still_rejects_multi_rank_fleets(self, ddp_fleet):
        """The backend contract predates the event engine and survives it."""
        with pytest.raises(ValueError, match="serial"):
            ClusterReplayer(backend="serial", engine="event").replay(ddp_fleet(2))


# ----------------------------------------------------------------------
# Differential equivalence, field by field
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    @pytest.mark.parametrize("world_size", [1, 2, 4, 8])
    def test_ddp_rm_reports_identical_across_world_sizes(self, ddp_fleet, world_size):
        traces = ddp_fleet(world_size)
        event = _replay(traces, "event")
        threaded = _replay(traces, "threaded")
        assert event.to_dict() == threaded.to_dict()
        assert _digest(event) == _digest(threaded)

    def test_param_linear_single_rank(self):
        workload = ParamLinearWorkload(
            ParamLinearConfig(batch_size=32, num_layers=2, hidden_size=128, input_size=128)
        )
        trace = capture_workload(workload, device="A100").execution_trace
        event = _replay([trace], "event")
        threaded = _replay([trace], "threaded")
        assert event.to_dict() == threaded.to_dict()

    def test_rm_single_rank(self):
        trace = capture_workload(make_small_rm(), device="A100").execution_trace
        event = _replay([trace], "event")
        threaded = _replay([trace], "threaded")
        assert event.to_dict() == threaded.to_dict()

    def test_straggler_overrides(self, ddp_fleet):
        traces = ddp_fleet(4)
        overrides = {0: {"device": "V100"}}
        event = _replay(traces, "event", rank_overrides=overrides)
        threaded = _replay(traces, "threaded", rank_overrides=overrides)
        assert event.straggler_rank == threaded.straggler_rank == 0
        assert event.to_dict() == threaded.to_dict()

    @pytest.mark.parametrize("track_memory", [False, True])
    def test_memory_tracking_on_and_off(self, ddp_fleet, track_memory):
        traces = ddp_fleet(2)
        event = _replay(traces, "event", track_memory=track_memory)
        threaded = _replay(traces, "threaded", track_memory=track_memory)
        assert event.has_memory is threaded.has_memory is track_memory
        assert event.to_dict() == threaded.to_dict()

    def test_world_scaling_override(self, ddp_fleet):
        """Re-pricing a small fleet at a bigger world (the scale-up what-if)
        must agree across engines too — this is the path the 1024-rank
        sweep exercises."""
        traces = ddp_fleet(2)
        config = ReplayConfig(device="A100", world_size=64)
        event = _replay(traces, "event", config=config)
        threaded = _replay(traces, "threaded", config=config)
        assert event.world_size == threaded.world_size == 64
        assert event.to_dict() == threaded.to_dict()

    def test_comm_delay_knobs(self, ddp_fleet):
        traces = ddp_fleet(2)
        config = ReplayConfig(device="A100", comm_delay_scale=2.5, comm_extra_delay_us=7.0)
        assert _replay(traces, "event", config=config).to_dict() == _replay(
            traces, "threaded", config=config
        ).to_dict()

    def test_event_engine_is_deterministic_across_runs(self, ddp_fleet):
        traces = ddp_fleet(4)
        assert _digest(_replay(traces, "event")) == _digest(_replay(traces, "event"))

    def test_single_replica_failure_contract_held_by_event_engine(self, ddp_fleet):
        from repro.cluster import ClusterReplayError

        with pytest.raises(ClusterReplayError, match="rank 0"):
            _replay([ddp_fleet(1)[0]], "event", config=ReplayConfig(device="NoSuchDevice"))


# ----------------------------------------------------------------------
# Hierarchical topology model
# ----------------------------------------------------------------------
class TestHierarchicalTopology:
    def test_flat_preset_is_no_topology(self):
        assert topology_from_name(None) is None
        assert topology_from_name("flat") is None

    def test_unknown_preset_is_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            topology_from_name("torus")

    def test_presets_resolve_to_increasing_spans(self):
        for name in ("nvlink-island", "rail-spine"):
            topology = topology_from_name(name, InterconnectSpec())
            spans = [tier.span for tier in topology.tiers]
            assert spans == sorted(spans)
            assert len(set(spans)) == len(spans)

    def test_spanned_tiers_grow_with_world_size(self):
        topology = topology_from_name("rail-spine", InterconnectSpec())
        assert len(topology.spanned(2)) == 1
        assert len(topology.spanned(64)) == 2
        assert len(topology.spanned(100_000)) == 3

    def test_bottleneck_is_min_over_spanned_tiers(self):
        topology = HierarchicalTopology(
            name="test",
            tiers=(
                TopologyTier("fast", 8, 600.0, 2.0),
                TopologyTier("slow", 1 << 20, 25.0, 10.0),
            ),
        )
        assert topology.bottleneck_bw_gbps(4) == 600.0
        assert topology.bottleneck_bw_gbps(512) == 25.0
        # Latency accumulates over every spanned tier.
        assert topology.latency_us(512) > topology.latency_us(4)

    def test_no_topology_keeps_flat_costs_byte_identical(self):
        spec = InterconnectSpec()
        flat = CollectiveCostModel(spec)
        explicit = CollectiveCostModel(spec, topology=None)
        for world in (2, 8, 64, 1024):
            assert flat.collective_us("all_reduce", 1 << 22, world) == explicit.collective_us(
                "all_reduce", 1 << 22, world
            )

    def test_spine_crossing_costs_more_than_flat(self):
        spec = InterconnectSpec()
        flat = CollectiveCostModel(spec)
        spine = CollectiveCostModel(spec, topology=topology_from_name("rail-spine", spec))
        world = 1024  # crosses the (slower, higher-latency) spine tier
        assert spine.collective_us("all_reduce", 1 << 22, world) > flat.collective_us(
            "all_reduce", 1 << 22, world
        )

    def test_flat_topology_report_matches_no_topology(self, ddp_fleet):
        traces = ddp_fleet(2)
        base = api.replay_cluster(traces).on("A100").run()
        flagged = api.replay_cluster(traces).on("A100").topology("flat").run()
        assert base.to_dict() == flagged.to_dict()

    def test_topology_shifts_fleet_costs_deterministically(self, ddp_fleet):
        traces = ddp_fleet(2)
        session = lambda: api.replay_cluster(traces).on("A100").world(1024)
        flat = session().run()
        spine = session().topology("rail-spine").run()
        assert spine.critical_path_us >= flat.critical_path_us
        # Topology is part of the replay config, so both engines price it.
        threaded = session().topology("rail-spine").engine("threaded").run()
        assert spine.to_dict() == threaded.to_dict()

    def test_topology_participates_in_config_digest(self):
        base = ReplayConfig(device="A100")
        spine = ReplayConfig(device="A100", topology="rail-spine")
        assert base.digest() != spine.digest()
        assert ReplayConfig.from_dict(spine.to_dict()).digest() == spine.digest()


# ----------------------------------------------------------------------
# ProfileHook attribution under the single-threaded event loop
# ----------------------------------------------------------------------
class TestProfileAttribution:
    @staticmethod
    def _hook_fixture():
        ticks = [0.0]

        def clock() -> float:
            return ticks[0]

        hook = ProfileHook(clock=clock)
        context = SimpleNamespace(measuring=True)
        entry = SimpleNamespace(node=SimpleNamespace(name="aten::mm"))
        return ticks, hook, context, entry

    def test_on_resume_reanchors_the_per_op_mark(self):
        """Regression: ProfileHook assumed one thread per rank, so the first
        op after an event-scheduler context switch was billed for the wall
        time spent replaying *other* ranks.  ``on_resume`` re-anchors."""
        ticks, hook, context, entry = self._hook_fixture()
        hook.on_stage_start(context, SimpleNamespace(name="execute"))
        ticks[0] = 1.0
        hook.on_op_replayed(context, entry, None)  # delta = 1.0
        ticks[0] = 9.0  # the scheduler runs other ranks for 8 ticks...
        hook.on_resume(context)  # ...then resumes this rank
        ticks[0] = 10.0
        hook.on_op_replayed(context, entry, None)  # delta must be 1.0, not 9.0
        (op,) = hook.report().ops
        assert op.count == 2
        assert op.max_us == pytest.approx(1e6)  # 1.0 s in us, no foreign time
        assert op.total_ms == pytest.approx(2e3)

    def test_without_resume_foreign_time_would_be_billed(self):
        """The inverse scenario documents why the hook needs on_resume."""
        ticks, hook, context, entry = self._hook_fixture()
        hook.on_stage_start(context, SimpleNamespace(name="execute"))
        ticks[0] = 1.0
        hook.on_op_replayed(context, entry, None)
        ticks[0] = 10.0  # no on_resume: the 9 foreign ticks leak in
        hook.on_op_replayed(context, entry, None)
        (op,) = hook.report().ops
        assert op.max_us == pytest.approx(9e6)

    def test_event_engine_profiles_each_rank_separately(self, ddp_fleet):
        traces = ddp_fleet(2)
        report = api.replay_cluster(traces).on("A100").with_profiling().run()
        profiles = report.profile_reports
        assert set(profiles) == {0, 1}
        threaded = (
            api.replay_cluster(traces).on("A100").engine("threaded").with_profiling().run()
        )
        for rank, profile in profiles.items():
            assert profile.replayed_ops > 0
            # Attribution is per rank: both engines see the same op set.
            assert profile.replayed_ops == threaded.profile_reports[rank].replayed_ops


# ----------------------------------------------------------------------
# replay-dist CLI flags
# ----------------------------------------------------------------------
class TestReplayDistCliFlags:
    @pytest.fixture(scope="class")
    def fleet_dir(self, tmp_path_factory):
        runner = DistributedRunner(
            lambda rank, world: make_small_rm(rank=rank, world_size=world), world_size=2
        )
        directory = tmp_path_factory.mktemp("fleet")
        DistributedRunner.save_captures(runner.run(), directory)
        return directory

    def test_world_size_alias(self, fleet_dir, capsys):
        exit_code = cli_main(
            ["replay-dist", str(fleet_dir), "--world-size", "16", "--json", "-n", "1"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["world_size"] == 16

    def test_topology_flag_reaches_the_cost_model(self, fleet_dir, capsys):
        args = ["replay-dist", str(fleet_dir), "--world-size", "1024", "--json", "-n", "1"]
        assert cli_main(args) == 0
        flat = json.loads(capsys.readouterr().out)
        assert cli_main(args + ["--topology", "rail-spine"]) == 0
        spine = json.loads(capsys.readouterr().out)
        assert spine["critical_path_us"] >= flat["critical_path_us"]

    def test_unknown_topology_is_an_argparse_error(self, fleet_dir, capsys):
        with pytest.raises(SystemExit):
            cli_main(["replay-dist", str(fleet_dir), "--topology", "torus"])

    def test_engine_flag_matches_default_event_output(self, fleet_dir, capsys):
        assert cli_main(["replay-dist", str(fleet_dir), "--json", "-n", "1"]) == 0
        event = json.loads(capsys.readouterr().out)
        assert (
            cli_main(
                ["replay-dist", str(fleet_dir), "--engine", "threaded", "--json", "-n", "1"]
            )
            == 0
        )
        threaded = json.loads(capsys.readouterr().out)
        assert event == threaded

    def test_json_round_trips_through_serialize(self, fleet_dir, capsys):
        assert (
            cli_main(
                ["replay-dist", str(fleet_dir), "--topology", "nvlink-island", "--json", "-n", "1"]
            )
            == 0
        )
        cli_payload = json.loads(capsys.readouterr().out)
        report = (
            api.replay_cluster(fleet_dir)
            .on("A100")
            .iterations(1)
            .topology("nvlink-island")
            .run()
        )
        assert cli_payload == json.loads(serialize.dumps(serialize.cluster_payload(report)))
