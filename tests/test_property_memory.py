"""Property-based tests for the caching-allocator model (``repro.memory``).

Mirrors the style of ``tests/test_property_hardware.py``: random alloc/free
programs are generated and the allocator's structural invariants are
asserted after every step —

* the free list and block map never corrupt (blocks tile their segments
  exactly, counters match the block map),
* ``reserved >= allocated`` at all times,
* freeing everything returns every byte to the cache, and ``empty_cache``
  then returns the pool to empty,
* size rounding is monotone and quantised.
"""

from hypothesis import given, settings, strategies as st

from repro.memory.allocator import (
    MIN_BLOCK_BYTES,
    CachingAllocator,
    SimulatedOOM,
    round_block_size,
    segment_size_for,
)

#: Allocation programs: (size, stream, free-target) triples.  Sizes span
#: the small pool, the shared large pool and dedicated segments.
program_steps = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12 << 20),     # request bytes
        st.integers(min_value=0, max_value=2),            # stream
        st.integers(min_value=0, max_value=10**6),        # free selector
        st.booleans(),                                    # free after this step?
    ),
    min_size=1,
    max_size=60,
)


class TestAllocatorProperties:
    @given(st.integers(min_value=1, max_value=1 << 30))
    @settings(max_examples=300, deadline=None)
    def test_rounding_quantised_and_monotone(self, nbytes):
        rounded = round_block_size(nbytes)
        assert rounded >= nbytes
        assert rounded % MIN_BLOCK_BYTES == 0
        assert round_block_size(nbytes + 1) >= rounded
        assert segment_size_for(rounded) >= rounded

    @given(program_steps)
    @settings(max_examples=200, deadline=None)
    def test_alloc_free_program_never_corrupts_state(self, steps):
        allocator = CachingAllocator(capacity_bytes=256 << 20)
        live = []
        for size, stream, selector, do_free in steps:
            try:
                live.append(allocator.malloc(size, stream=stream))
            except SimulatedOOM:
                pass  # capacity pressure is legal; state must stay sound
            if do_free and live:
                allocator.free(live.pop(selector % len(live)))
            stats = allocator.stats()
            # Invariant 1: reserved always covers allocated.
            assert stats.reserved_bytes >= stats.allocated_bytes
            # Invariant 2: the block map and counters agree.
            allocator.check_consistency()
            # Invariant 3: peaks are monotone bounds.
            assert stats.peak_allocated_bytes >= stats.allocated_bytes
            assert stats.peak_reserved_bytes >= stats.reserved_bytes
            # Invariant 4: allocated equals the sum of live block sizes.
            assert stats.allocated_bytes == sum(block.size for block in live)

        # Full free: everything returns to the cache...
        for block in live:
            allocator.free(block)
        allocator.check_consistency()
        stats = allocator.stats()
        assert stats.allocated_bytes == 0
        assert stats.active_blocks == 0
        assert stats.alloc_count == stats.free_count
        # ... and empty_cache returns the pool to empty.
        allocator.empty_cache()
        final = allocator.stats()
        assert final.reserved_bytes == 0
        assert final.segments == 0
        assert final.device_frees == final.device_mallocs
        allocator.check_consistency()

    @given(program_steps)
    @settings(max_examples=100, deadline=None)
    def test_allocations_never_overlap(self, steps):
        allocator = CachingAllocator(capacity_bytes=256 << 20)
        live = []
        for size, stream, selector, do_free in steps:
            try:
                live.append(allocator.malloc(size, stream=stream))
            except SimulatedOOM:
                pass
            if do_free and live:
                allocator.free(live.pop(selector % len(live)))
        # Live blocks within one segment must occupy disjoint ranges.
        by_segment = {}
        for block in live:
            by_segment.setdefault(id(block.segment), []).append(block)
        for blocks in by_segment.values():
            blocks.sort(key=lambda b: b.offset)
            for earlier, later in zip(blocks, blocks[1:]):
                assert earlier.offset + earlier.size <= later.offset

    @given(
        st.integers(min_value=1, max_value=4 << 20),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_same_size_reuse_is_cached(self, size, repeats):
        """Alloc/free cycles of one size never grow the pool past the
        first allocation's reservation — the free-list reuse property."""
        allocator = CachingAllocator(capacity_bytes=256 << 20)
        block = allocator.malloc(size)
        reserved_after_first = allocator.reserved_bytes
        allocator.free(block)
        for _ in range(repeats):
            block = allocator.malloc(size)
            allocator.free(block)
        assert allocator.reserved_bytes == reserved_after_first
        assert allocator.stats().device_mallocs == 1
