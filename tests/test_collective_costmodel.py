"""Direct unit tests for :class:`repro.hardware.network.CollectiveCostModel`.

The model's two structural properties matter to every distributed result in
the paper reproduction: (1) traffic inside one NVLink node is priced
against the intra-node fabric, while any group spanning nodes drops to the
NIC bottleneck; (2) the synchronisation-skew term grows (slowly) with the
group size, making large-scale collectives slower per byte.
"""

from __future__ import annotations

import math

import pytest

from repro.hardware.network import CollectiveCostModel, InterconnectSpec

MB = 1024.0 * 1024.0


@pytest.fixture
def spec() -> InterconnectSpec:
    return InterconnectSpec()  # 8-GPU NVLink nodes, 200 Gb/s NIC per GPU


@pytest.fixture
def model(spec) -> CollectiveCostModel:
    return CollectiveCostModel(spec)


class TestIntraVsInterNodePricing:
    def test_group_within_one_node_uses_nvlink(self, model, spec):
        """Up to gpus_per_node ranks, the bottleneck is NVLink bandwidth."""
        bytes_per_rank = 64 * MB
        duration = model.all_gather_us(bytes_per_rank, spec.gpus_per_node)
        moved = (spec.gpus_per_node - 1) * bytes_per_rank
        nvlink_transfer_us = moved / (spec.intra_node_bw_gbps * 1e9) * 1e6
        nic_transfer_us = moved / (spec.inter_node_bw_gbps * 1e9) * 1e6
        # Close to the NVLink transfer time (plus small latency), nowhere
        # near the NIC transfer time.
        assert duration < nvlink_transfer_us * 1.5
        assert duration < nic_transfer_us / 2

    def test_crossing_the_node_boundary_drops_to_nic(self, model, spec):
        """gpus_per_node -> gpus_per_node + 1 ranks changes the fabric."""
        bytes_per_rank = 64 * MB
        within = model.reduce_scatter_us(bytes_per_rank, spec.gpus_per_node)
        across = model.reduce_scatter_us(bytes_per_rank, spec.gpus_per_node + 1)
        # The payload moved grows by only (n-1)/n, but the bandwidth drops
        # by intra/inter (12x for the default spec): the jump dominates.
        assert across > within * (spec.intra_node_bw_gbps / spec.inter_node_bw_gbps) / 2

    def test_all_reduce_inter_node_scales_with_nic_bandwidth(self, spec):
        """Doubling the NIC bandwidth halves the transfer component."""
        bytes_per_rank = 256 * MB
        world = 2 * spec.gpus_per_node
        slow = CollectiveCostModel(spec)
        fast = CollectiveCostModel(spec.clone(inter_node_bw_gbps=2 * spec.inter_node_bw_gbps))
        slow_us = slow.all_reduce_us(bytes_per_rank, world)
        fast_us = fast.all_reduce_us(bytes_per_rank, world)
        # Transfer dominates at 256 MB, so the ratio approaches 2.
        assert 1.7 < slow_us / fast_us <= 2.0

    def test_p2p_same_node_vs_cross_node(self, model, spec):
        same = model.p2p_us(16 * MB, same_node=True)
        cross = model.p2p_us(16 * MB, same_node=False)
        assert cross > same
        assert cross >= spec.inter_node_latency_us


class TestSkewTerm:
    def test_latency_grows_with_group_size(self, model):
        """The skew term makes per-collective latency grow with ranks."""
        latencies = [model._latency_us(world) for world in (2, 8)]
        assert latencies[1] > latencies[0]
        inter = [model._latency_us(world) for world in (16, 64, 512)]
        assert inter[0] < inter[1] < inter[2]

    def test_skew_growth_is_logarithmic(self, model, spec):
        """Within one fabric, latency grows by skew_us_per_rank per
        doubling of the group size — not linearly with ranks."""
        l16 = model._latency_us(16)
        l64 = model._latency_us(64)
        expected = spec.skew_us_per_rank * (math.log2(64) - math.log2(16))
        assert l64 - l16 == pytest.approx(expected)

    def test_skew_term_visible_in_small_payload_collectives(self, spec):
        """With a tiny payload, duration is latency-bound, so a larger
        group is strictly slower even on the same fabric."""
        model = CollectiveCostModel(spec)
        small = model.all_reduce_us(1024.0, 16)
        large = model.all_reduce_us(1024.0, 1024)
        assert large > small

    def test_zero_skew_spec_flattens_growth_within_fabric(self, spec):
        model = CollectiveCostModel(spec.clone(skew_us_per_rank=0.0))
        assert model._latency_us(16) == model._latency_us(1024)


class TestDegenerateAndDispatch:
    def test_world_size_one_is_latency_only(self, model, spec):
        """A singleton group never pays alpha-beta transfer costs."""
        for op in ("all_reduce", "all_gather", "reduce_scatter", "all_to_all"):
            assert model.collective_us(op, 1e9, 1) == pytest.approx(
                spec.intra_node_latency_us
            )

    def test_dispatch_accepts_qualified_names(self, model):
        plain = model.collective_us("all_reduce", 4 * MB, 8)
        qualified = model.collective_us("c10d::all_reduce", 4 * MB, 8)
        assert plain == qualified

    def test_unknown_collective_raises(self, model):
        with pytest.raises(ValueError):
            model.collective_us("c10d::gather_scatter_shuffle", 1.0, 8)

    def test_delay_scale_and_extra_delay(self, spec):
        base = CollectiveCostModel(spec)
        scaled = CollectiveCostModel(spec, delay_scale=2.0, extra_delay_us=5.0)
        b = base.all_reduce_us(8 * MB, 16)
        s = scaled.all_reduce_us(8 * MB, 16)
        assert s == pytest.approx(2.0 * b + 5.0)
