"""Tests for the replay-engine profiler (``repro.profiling``).

Covers the three guarantees the profiling subsystem makes:

* **Aggregation correctness** — per-op counts/totals/min/max/shares and
  per-stage wall times, driven through the hook protocol with a fake
  clock so every expected number is exact.
* **Zero overhead when disabled** — a pipeline without hooks never even
  calls the per-op notification path (asserted by making that path
  explode), and ``result.profile_report`` stays ``None``.
* **Serialisation** — a :class:`ProfileReport` round-trips through the
  service layer's canonical JSON serializer and its own ``from_dict``.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path
from types import SimpleNamespace

import pytest

import repro.api as api
from repro.core.pipeline import ReplayContext
from repro.profiling import PROFILE_SCHEMA_VERSION, OpProfile, ProfileHook, ProfileReport
from repro.profiling import profiler as profiler_module
from repro.service import serialize


class FakeClock:
    """A deterministic ``perf_counter`` stand-in: advances on demand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _entry(name: str) -> SimpleNamespace:
    return SimpleNamespace(node=SimpleNamespace(name=name))


def _stage(name: str) -> SimpleNamespace:
    return SimpleNamespace(name=name)


def _context(measuring: bool = True) -> SimpleNamespace:
    return SimpleNamespace(measuring=measuring)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
class TestProfileHookAggregation:
    def test_per_op_counts_totals_and_extrema(self):
        clock = FakeClock()
        hook = ProfileHook(clock=clock)
        context = _context(measuring=True)

        hook.on_stage_start(context, _stage("execute"))
        for delta, name in [(0.002, "aten::mm"), (0.001, "aten::relu"), (0.004, "aten::mm")]:
            clock.advance(delta)
            hook.on_op_replayed(context, _entry(name), None)
        clock.advance(0.0005)
        hook.on_stage_end(context, _stage("execute"))

        report = hook.report(trace_name="t", device="A100", vectorized=False)
        assert report.replayed_ops == 3
        assert report.measured_ops == 3
        assert [op.name for op in report.ops] == ["aten::mm", "aten::relu"]

        mm = report.ops[0]
        assert mm.count == 2
        assert mm.total_ms == pytest.approx(6.0)
        assert mm.mean_us == pytest.approx(3000.0)
        assert mm.min_us == pytest.approx(2000.0)
        assert mm.max_us == pytest.approx(4000.0)
        assert mm.share_pct == pytest.approx(600 / 7)

        relu = report.ops[1]
        assert relu.count == 1
        assert relu.share_pct == pytest.approx(100 / 7)
        # Shares cover the whole measured per-op time.
        assert sum(op.share_pct for op in report.ops) == pytest.approx(100.0)

        # Stage wall time includes the trailing non-op time.
        assert report.stage_wall_s["execute"] == pytest.approx(0.0075)
        assert report.execute_wall_s == pytest.approx(0.0075)

        # Throughput counts measured ops over the first-to-last-op window.
        assert report.ops_per_sec == pytest.approx(3 / 0.007)

    def test_warmup_ops_counted_but_not_measured(self):
        clock = FakeClock()
        hook = ProfileHook(clock=clock)
        hook.on_stage_start(_context(), _stage("execute"))
        clock.advance(0.010)
        hook.on_op_replayed(_context(measuring=False), _entry("a"), None)
        clock.advance(0.001)
        hook.on_op_replayed(_context(measuring=True), _entry("a"), None)

        report = hook.report()
        assert report.replayed_ops == 2
        assert report.measured_ops == 1
        assert report.ops[0].count == 2
        # The measured window covers only the measured op.
        assert report.ops_per_sec == pytest.approx(1 / 0.001)

    def test_hot_first_ordering_breaks_ties_by_name(self):
        clock = FakeClock()
        hook = ProfileHook(clock=clock)
        hook.on_stage_start(_context(), _stage("execute"))
        for name in ["b", "a", "c"]:
            clock.advance(0.001)
            hook.on_op_replayed(_context(), _entry(name), None)
        assert [op.name for op in hook.report().ops] == ["a", "b", "c"]

    def test_reset_forgets_everything(self):
        clock = FakeClock()
        hook = ProfileHook(clock=clock)
        hook.on_stage_start(_context(), _stage("execute"))
        clock.advance(0.001)
        hook.on_op_replayed(_context(), _entry("a"), None)
        hook.reset()
        report = hook.report()
        assert report.replayed_ops == 0
        assert report.ops == []
        assert report.ops_per_sec == 0.0

    def test_empty_hook_reports_cleanly(self):
        report = ProfileHook(clock=FakeClock()).report()
        assert report.replayed_ops == 0
        assert report.ops_per_sec == 0.0
        assert report.total_op_ms == 0.0
        # format_table degrades gracefully with no ops.
        assert "replay profile" in report.format_table()

    def test_atexit_registration_is_opt_in(self):
        before = list(profiler_module._atexit_hooks)
        ProfileHook(clock=FakeClock())
        assert profiler_module._atexit_hooks == before
        hook = ProfileHook(clock=FakeClock(), report_at_exit=True)
        assert profiler_module._atexit_hooks[-1] is hook
        profiler_module._atexit_hooks.remove(hook)


# ----------------------------------------------------------------------
# Zero overhead when disabled
# ----------------------------------------------------------------------
class TestZeroOverheadWhenDisabled:
    def test_unhooked_replay_never_touches_notification_path(
        self, small_linear_capture, monkeypatch
    ):
        def explode(self, entry, output):  # pragma: no cover - must not run
            raise AssertionError("per-op notification ran without hooks")

        monkeypatch.setattr(ReplayContext, "emit_op_replayed", explode)
        result = api.replay(small_linear_capture).run()
        assert result.replayed_ops > 0
        assert result.profile_report is None

    def test_profiled_and_unprofiled_results_are_identical(self, small_linear_capture):
        plain = api.replay(small_linear_capture).iterations(2, warmup=1).run()
        profiled = (
            api.replay(small_linear_capture)
            .iterations(2, warmup=1)
            .with_profiling()
            .run()
        )
        assert profiled.summarize().to_dict() == plain.summarize().to_dict()
        assert profiled.profile_report is not None


# ----------------------------------------------------------------------
# End-to-end through the api facade
# ----------------------------------------------------------------------
class TestWithProfiling:
    def test_session_report_counts_every_replayed_op(self, small_linear_capture):
        result = (
            api.replay(small_linear_capture)
            .iterations(2, warmup=1)
            .with_profiling()
            .run()
        )
        report = result.profile_report
        per_pass = result.replayed_ops // 2
        # 1 warm-up + 2 measured passes observed; 2 measured.
        assert report.replayed_ops == 3 * per_pass
        assert report.measured_ops == result.replayed_ops
        assert report.ops_per_sec > 0
        assert report.vectorized is True
        assert report.device == "A100"
        assert report.trace_name == "param_linear"
        assert set(report.stage_wall_s) >= {"select", "reconstruct", "execute", "measure"}

    def test_session_report_respects_scalar_config(self, small_linear_capture):
        result = (
            api.replay(small_linear_capture)
            .configure(vectorized=False)
            .with_profiling()
            .run()
        )
        assert result.profile_report.vectorized is False

    def test_cluster_profiling_reports_every_rank(self):
        from repro.workloads.ddp import DistributedRunner

        from tests.conftest import make_small_rm

        runner = DistributedRunner(
            lambda rank, world_size: make_small_rm(rank, world_size), world_size=2
        )
        report = api.replay_cluster(runner.run()).with_profiling().run()
        assert sorted(report.profile_reports) == [0, 1]
        assert report.has_profiles
        for rank_report in report.ranks:
            assert rank_report.profile.replayed_ops > 0
        payload = report.to_dict()
        assert all("profile" in rank for rank in payload["ranks"])

    def test_cluster_without_profiling_has_no_reports(self):
        from repro.workloads.ddp import DistributedRunner

        from tests.conftest import make_small_rm

        runner = DistributedRunner(
            lambda rank, world_size: make_small_rm(rank, world_size), world_size=2
        )
        report = api.replay_cluster(runner.run()).run()
        assert not report.has_profiles
        assert report.profile_reports == {}
        assert all("profile" not in rank for rank in report.to_dict()["ranks"])


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
class TestProfileReportSerialisation:
    def _sample_report(self) -> ProfileReport:
        clock = FakeClock()
        hook = ProfileHook(clock=clock)
        hook.on_stage_start(_context(), _stage("execute"))
        for delta, name in [(0.002, "aten::mm"), (0.001, "aten::relu")]:
            clock.advance(delta)
            hook.on_op_replayed(_context(), _entry(name), None)
        hook.on_stage_end(_context(), _stage("execute"))
        return hook.report(trace_name="rm", device="V100", vectorized=False)

    def test_round_trip_through_service_serializer(self):
        report = self._sample_report()
        data = json.loads(serialize.dumps(report))
        assert data["schema_version"] == PROFILE_SCHEMA_VERSION
        rebuilt = ProfileReport.from_dict(data)
        assert rebuilt == report
        # And the rebuilt report serialises identically.
        assert rebuilt.to_dict() == report.to_dict()

    def test_to_dict_carries_the_parsed_keys(self):
        data = self._sample_report().to_dict()
        assert {
            "schema_version", "trace_name", "device", "vectorized",
            "replayed_ops", "measured_ops", "stage_wall_s", "execute_wall_s",
            "ops_per_sec", "ops",
        } <= set(data)
        assert all(isinstance(op["count"], int) for op in data["ops"])

    def test_op_profile_round_trip(self):
        op = OpProfile(
            name="aten::mm", count=3, total_ms=1.5, mean_us=500.0,
            min_us=400.0, max_us=700.0, share_pct=60.0,
        )
        assert OpProfile.from_dict(op.to_dict()) == op

    def test_profile_payload_shape(self):
        reports = {"rm": self._sample_report()}
        payload = json.loads(serialize.dumps(serialize.profile_payload(reports)))
        assert payload["schema_version"] == PROFILE_SCHEMA_VERSION
        assert set(payload["reports"]) == {"rm"}
        assert payload["reports"]["rm"]["device"] == "V100"


# ----------------------------------------------------------------------
# The monotonic-clock lint rule
# ----------------------------------------------------------------------
REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_usage_checker():
    import sys

    spec = importlib.util.spec_from_file_location(
        "check_deprecated_usage", REPO_ROOT / "scripts" / "check_deprecated_usage.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Registered before exec: dataclass field-annotation resolution looks
    # the module up in sys.modules.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestMonotonicClockGuard:
    """``scripts/check_deprecated_usage.py`` bans ``time.time(`` wherever
    host durations are measured (bench + profiling)."""

    def test_repository_is_clean(self):
        checker = _load_usage_checker()
        offenders = checker.find_offenders(REPO_ROOT)
        assert offenders == {}

    def test_rule_fires_on_time_time(self, tmp_path):
        checker = _load_usage_checker()
        bad = tmp_path / "src" / "repro" / "profiling"
        bad.mkdir(parents=True)
        (bad / "x.py").write_text("import time\nstart = time.time()\n")
        offenders = checker.find_offenders(tmp_path)
        assert list(offenders) == ["non-monotonic-clock"]
        assert "x.py:2" in offenders["non-monotonic-clock"][0]

    def test_perf_counter_is_allowed(self, tmp_path):
        checker = _load_usage_checker()
        ok = tmp_path / "src" / "repro" / "bench"
        ok.mkdir(parents=True)
        (ok / "x.py").write_text("import time\nstart = time.perf_counter()\n")
        assert checker.find_offenders(tmp_path) == {}

    def test_bench_and_profiling_are_both_covered(self):
        checker = _load_usage_checker()
        clock_rule = next(r for r in checker.RULES if r.name == "non-monotonic-clock")
        assert set(clock_rule.roots) == {"src/repro/bench", "src/repro/profiling"}


class TestBatchReplayerGuard:
    """``scripts/check_deprecated_usage.py`` bans constructing
    ``BatchReplayer`` outside the service layer and the daemon — batch
    execution policy (cache, error capture, pause semantics) stays in one
    place."""

    def test_rule_fires_on_direct_construction(self, tmp_path):
        checker = _load_usage_checker()
        bad = tmp_path / "src" / "repro" / "api"
        bad.mkdir(parents=True)
        (bad / "x.py").write_text("replayer = BatchReplayer(cache=None)\n")
        offenders = checker.find_offenders(tmp_path)
        assert list(offenders) == ["direct-batch-replayer"]
        assert "x.py:1" in offenders["direct-batch-replayer"][0]

    def test_service_and_daemon_directories_are_exempt(self, tmp_path):
        checker = _load_usage_checker()
        for exempt_dir in ("service", "daemon"):
            ok = tmp_path / "src" / "repro" / exempt_dir
            ok.mkdir(parents=True)
            (ok / "x.py").write_text("replayer = BatchReplayer(cache=None)\n")
        assert checker.find_offenders(tmp_path) == {}

    def test_exempt_entries_are_directory_prefixes(self):
        checker = _load_usage_checker()
        rule = next(r for r in checker.RULES if r.name == "direct-batch-replayer")
        assert "src/repro/service/" in rule.exempt
        assert "src/repro/daemon/" in rule.exempt
